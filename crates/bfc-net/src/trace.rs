//! Flight-recorder tracing: structured sim events behind the [`NetSink`]
//! seam.
//!
//! Every interesting thing a switch does — enqueue, dequeue, drop, pause —
//! already happens with a [`NetSink`] in hand, so tracing rides the same
//! seam: [`NetSink::trace`] is a default no-op that only the [`Recording`]
//! wrapper overrides. When tracing is off the emission sites compile down to
//! nothing (the default impl ignores its arguments and is inlined away);
//! when it is on, each event lands in a bounded [`FlightRecorder`] ring that
//! keeps the last N records and counts what it sheds.
//!
//! # Canonical order
//!
//! A record is keyed by `(time, rank, seq)` exactly like the engine's
//! scheduled events: the rank is derived from the event's *content*
//! ([`TraceEvent::canon_rank`]), so per-shard record streams merge into one
//! canonical order that does not depend on how the run was sharded. Two
//! records with equal `(time, rank)` necessarily describe the same node,
//! which exactly one shard owns — so a stable sort over the concatenated
//! per-shard streams reproduces the serial engine's relative order
//! ([`FlightTrace::merge`]).
//!
//! # Container
//!
//! [`write_trace`] / [`read_trace`] serialize a trace to a binary container
//! reusing [`bfc_sim::snapshot`]'s framing (magic, version, length prefix,
//! FNV-1a-64 checksum), with its own magic so snapshot and trace files can
//! never be confused for one another.

use std::collections::VecDeque;

use bfc_sim::snapshot::{finalize, open, SnapError, SnapReader, SnapWriter};
use bfc_sim::{SimDuration, SimTime};

use crate::event::NetSink;
use crate::types::NodeId;

/// Magic bytes of the flight-recorder trace container.
pub const TRACE_MAGIC: &[u8; 8] = b"BFCTRACE";
/// Container format version checked by [`read_trace`].
pub const TRACE_VERSION: u32 = 1;

/// Queue index used for the strict-priority control queue in trace records.
pub const QUEUE_CONTROL: u32 = u32::MAX;
/// Queue index used for the BFC high-priority queue in trace records.
pub const QUEUE_HIGH_PRIORITY: u32 = u32::MAX - 1;
/// Queue index used for the untracked-flow overflow queue in trace records.
pub const QUEUE_OVERFLOW: u32 = u32::MAX - 2;

/// Formats a trace-record queue index, naming the special queues.
pub fn queue_name(queue: u32) -> String {
    match queue {
        QUEUE_CONTROL => "ctrl".to_string(),
        QUEUE_HIGH_PRIORITY => "hi".to_string(),
        QUEUE_OVERFLOW => "ovfl".to_string(),
        q => q.to_string(),
    }
}

/// One structured observability event. `Copy` and small on purpose: the
/// recorder's ring shuffles these by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A data packet joined queue `queue` of egress `port` at `node`.
    Enqueue {
        /// Switch making the decision.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue index (see the `QUEUE_*` constants for special queues).
        queue: u32,
        /// Flow the packet belongs to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// A data packet left queue `queue` of egress `port` at `node`.
    Dequeue {
        /// Switch transmitting the packet.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue the packet was scheduled from.
        queue: u32,
        /// Flow the packet belongs to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// A data packet was dropped at admission (shared buffer full).
    Drop {
        /// Switch dropping the packet.
        node: NodeId,
        /// Local egress port the packet was headed for.
        port: u32,
        /// Flow the packet belonged to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// A packet was blackholed (no route to its destination).
    Blackhole {
        /// Switch at which routing failed.
        node: NodeId,
        /// Flow the packet belonged to.
        flow: u32,
        /// Packet size in bytes.
        bytes: u32,
    },
    /// `node` sent a port-level PFC frame out of ingress `port` toward its
    /// upstream neighbor (`pause` = XOFF, `!pause` = XON).
    PfcSent {
        /// Switch sending the frame.
        node: NodeId,
        /// Local ingress port whose buffer usage triggered the frame.
        port: u32,
        /// True for pause (XOFF), false for resume (XON).
        pause: bool,
    },
    /// A PFC frame from `src` arrived at `node`: `node`'s egress toward
    /// `src` pauses (or resumes). These are exactly the wait-for edges the
    /// safety tracker analyses.
    PfcDelivered {
        /// Switch whose egress is paused/resumed.
        node: NodeId,
        /// Neighbor that sent the frame.
        src: NodeId,
        /// True for pause (XOFF), false for resume (XON).
        pause: bool,
    },
    /// `node` sent a per-flow (BFC) pause-frame bloom filter upstream out of
    /// ingress `port`.
    FlowPause {
        /// Switch sending the frame.
        node: NodeId,
        /// Local ingress port the paused flows arrive on.
        port: u32,
        /// Bloom-filter bits set in the frame (0 = every VFID resumed).
        bits: u32,
        /// True if the frame pauses at least one VFID.
        pause: bool,
    },
    /// Queue `queue` of egress `port` went empty → non-empty.
    QueueActive {
        /// The switch.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue index.
        queue: u32,
    },
    /// Queue `queue` of egress `port` went non-empty → empty.
    QueueIdle {
        /// The switch.
        node: NodeId,
        /// Local egress port.
        port: u32,
        /// Queue index.
        queue: u32,
    },
    /// The cable `a <-> b` went down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The cable `a <-> b` came back up.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The cable `a <-> b` changed rate (degrade/restore).
    LinkRate {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Routing was recomputed after a fault event.
    Reroute {
        /// Index of the dynamics event that triggered the recompute.
        index: u32,
    },
}

impl TraceEvent {
    /// The switch a record describes (`a` for link events, `None` for
    /// reroutes, which are fabric-wide).
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            TraceEvent::Enqueue { node, .. }
            | TraceEvent::Dequeue { node, .. }
            | TraceEvent::Drop { node, .. }
            | TraceEvent::Blackhole { node, .. }
            | TraceEvent::PfcSent { node, .. }
            | TraceEvent::PfcDelivered { node, .. }
            | TraceEvent::FlowPause { node, .. }
            | TraceEvent::QueueActive { node, .. }
            | TraceEvent::QueueIdle { node, .. } => Some(node),
            TraceEvent::LinkDown { a, .. }
            | TraceEvent::LinkUp { a, .. }
            | TraceEvent::LinkRate { a, .. } => Some(a),
            TraceEvent::Reroute { .. } => None,
        }
    }

    /// Short kind name used by the CLI's filter and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Blackhole { .. } => "blackhole",
            TraceEvent::PfcSent { .. } => "pfc-sent",
            TraceEvent::PfcDelivered { .. } => "pfc-delivered",
            TraceEvent::FlowPause { .. } => "flow-pause",
            TraceEvent::QueueActive { .. } => "queue-active",
            TraceEvent::QueueIdle { .. } => "queue-idle",
            TraceEvent::LinkDown { .. } => "link-down",
            TraceEvent::LinkUp { .. } => "link-up",
            TraceEvent::LinkRate { .. } => "link-rate",
            TraceEvent::Reroute { .. } => "reroute",
        }
    }

    /// Content-derived rank ordering simultaneous records canonically,
    /// mirroring [`crate::event::NetEvent::canon_rank`]: kind tag in the
    /// high bits, then the node, then the port (or peer). Records with
    /// equal `(time, rank)` necessarily describe the same node, which is
    /// what makes the per-shard merge exact.
    pub fn canon_rank(&self) -> u64 {
        fn key(tag: u64, node: NodeId, sub: u32) -> u64 {
            (tag << 52) | (u64::from(node.0) << 20) | u64::from(sub)
        }
        match *self {
            TraceEvent::Enqueue { node, port, .. } => key(0, node, port),
            TraceEvent::Dequeue { node, port, .. } => key(1, node, port),
            TraceEvent::Drop { node, port, .. } => key(2, node, port),
            TraceEvent::Blackhole { node, .. } => key(3, node, 0),
            TraceEvent::PfcSent { node, port, .. } => key(4, node, port),
            TraceEvent::PfcDelivered { node, src, .. } => key(5, node, src.0),
            TraceEvent::FlowPause { node, port, .. } => key(6, node, port),
            TraceEvent::QueueActive { node, port, .. } => key(7, node, port),
            TraceEvent::QueueIdle { node, port, .. } => key(8, node, port),
            TraceEvent::LinkDown { a, b } => key(9, a, b.0),
            TraceEvent::LinkUp { a, b } => key(10, a, b.0),
            TraceEvent::LinkRate { a, b } => key(11, a, b.0),
            TraceEvent::Reroute { index } => key(12, NodeId(0), index),
        }
    }

    /// One-line human rendering used by `trace-tool trace inspect`.
    pub fn render(&self) -> String {
        match *self {
            TraceEvent::Enqueue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => format!(
                "enqueue       sw{} port {} q {} flow {} ({} B)",
                node.0,
                port,
                queue_name(queue),
                flow,
                bytes
            ),
            TraceEvent::Dequeue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => format!(
                "dequeue       sw{} port {} q {} flow {} ({} B)",
                node.0,
                port,
                queue_name(queue),
                flow,
                bytes
            ),
            TraceEvent::Drop {
                node,
                port,
                flow,
                bytes,
            } => format!("drop          sw{node} port {port} flow {flow} ({bytes} B)", node = node.0),
            TraceEvent::Blackhole { node, flow, bytes } => {
                format!("blackhole     sw{} flow {} ({} B)", node.0, flow, bytes)
            }
            TraceEvent::PfcSent { node, port, pause } => format!(
                "pfc-sent      sw{} port {} {}",
                node.0,
                port,
                if pause { "XOFF" } else { "XON" }
            ),
            TraceEvent::PfcDelivered { node, src, pause } => format!(
                "pfc-delivered sw{} {} by sw{}",
                node.0,
                if pause { "paused" } else { "resumed" },
                src.0
            ),
            TraceEvent::FlowPause {
                node,
                port,
                bits,
                pause,
            } => format!(
                "flow-pause    sw{} port {} {} ({} bloom bits)",
                node.0,
                port,
                if pause { "pause" } else { "resume" },
                bits
            ),
            TraceEvent::QueueActive { node, port, queue } => format!(
                "queue-active  sw{} port {} q {}",
                node.0,
                port,
                queue_name(queue)
            ),
            TraceEvent::QueueIdle { node, port, queue } => format!(
                "queue-idle    sw{} port {} q {}",
                node.0,
                port,
                queue_name(queue)
            ),
            TraceEvent::LinkDown { a, b } => format!("link-down     {} <-> {}", a.0, b.0),
            TraceEvent::LinkUp { a, b } => format!("link-up       {} <-> {}", a.0, b.0),
            TraceEvent::LinkRate { a, b } => format!("link-rate     {} <-> {}", a.0, b.0),
            TraceEvent::Reroute { index } => format!("reroute       (dynamics event {index})"),
        }
    }

    fn save(&self, w: &mut SnapWriter) {
        match *self {
            TraceEvent::Enqueue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => {
                w.put_u8(0);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::Dequeue {
                node,
                port,
                queue,
                flow,
                bytes,
            } => {
                w.put_u8(1);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::Drop {
                node,
                port,
                flow,
                bytes,
            } => {
                w.put_u8(2);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::Blackhole { node, flow, bytes } => {
                w.put_u8(3);
                w.put_u32(node.0);
                w.put_u32(flow);
                w.put_u32(bytes);
            }
            TraceEvent::PfcSent { node, port, pause } => {
                w.put_u8(4);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_bool(pause);
            }
            TraceEvent::PfcDelivered { node, src, pause } => {
                w.put_u8(5);
                w.put_u32(node.0);
                w.put_u32(src.0);
                w.put_bool(pause);
            }
            TraceEvent::FlowPause {
                node,
                port,
                bits,
                pause,
            } => {
                w.put_u8(6);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(bits);
                w.put_bool(pause);
            }
            TraceEvent::QueueActive { node, port, queue } => {
                w.put_u8(7);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
            }
            TraceEvent::QueueIdle { node, port, queue } => {
                w.put_u8(8);
                w.put_u32(node.0);
                w.put_u32(port);
                w.put_u32(queue);
            }
            TraceEvent::LinkDown { a, b } => {
                w.put_u8(9);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            TraceEvent::LinkUp { a, b } => {
                w.put_u8(10);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            TraceEvent::LinkRate { a, b } => {
                w.put_u8(11);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            TraceEvent::Reroute { index } => {
                w.put_u8(12);
                w.put_u32(index);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => TraceEvent::Enqueue {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            1 => TraceEvent::Dequeue {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            2 => TraceEvent::Drop {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            3 => TraceEvent::Blackhole {
                node: NodeId(r.get_u32()?),
                flow: r.get_u32()?,
                bytes: r.get_u32()?,
            },
            4 => TraceEvent::PfcSent {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                pause: r.get_bool()?,
            },
            5 => TraceEvent::PfcDelivered {
                node: NodeId(r.get_u32()?),
                src: NodeId(r.get_u32()?),
                pause: r.get_bool()?,
            },
            6 => TraceEvent::FlowPause {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                bits: r.get_u32()?,
                pause: r.get_bool()?,
            },
            7 => TraceEvent::QueueActive {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
            },
            8 => TraceEvent::QueueIdle {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                queue: r.get_u32()?,
            },
            9 => TraceEvent::LinkDown {
                a: NodeId(r.get_u32()?),
                b: NodeId(r.get_u32()?),
            },
            10 => TraceEvent::LinkUp {
                a: NodeId(r.get_u32()?),
                b: NodeId(r.get_u32()?),
            },
            11 => TraceEvent::LinkRate {
                a: NodeId(r.get_u32()?),
                b: NodeId(r.get_u32()?),
            },
            12 => TraceEvent::Reroute {
                index: r.get_u32()?,
            },
            _ => return Err(SnapError::Corrupt("unknown trace event tag")),
        })
    }
}

/// Minimum serialized bytes per record (time + rank + seq + tag + one u32),
/// used to validate the container's record count.
const RECORD_MIN_BYTES: usize = 8 + 8 + 8 + 1 + 4;

/// One recorded observation: the engine-style `(time, rank, seq)` key plus
/// the event. `seq` is the recorder-local emission index; after
/// [`FlightTrace::merge`] it is the index in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the observation.
    pub at: SimTime,
    /// Content-derived canonical rank ([`TraceEvent::canon_rank`]).
    pub rank: u64,
    /// Emission index (recorder-local before merge, canonical after).
    pub seq: u64,
    /// The observation.
    pub event: TraceEvent,
}

/// A bounded ring of the last N trace records. Records beyond the capacity
/// shed from the front (oldest first) and are counted in `dropped`; the
/// flight-recorder name is exact — what survives is the end of the story.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            records: VecDeque::with_capacity(capacity.min(64 * 1024)),
            seq: 0,
            dropped: 0,
        }
    }

    /// Records one event observed at `at`.
    #[inline]
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            rank: event.canon_rank(),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded (or everything has been shed).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consumes the recorder into a [`FlightTrace`] (records in emission
    /// order; not yet canonicalized).
    pub fn finish(self) -> FlightTrace {
        FlightTrace {
            records: self.records.into(),
            dropped: self.dropped,
        }
    }
}

/// The completed trace of one run (or one shard of a run).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightTrace {
    /// The surviving records.
    pub records: Vec<TraceRecord>,
    /// Records shed by the bounded ring before these.
    pub dropped: u64,
}

impl FlightTrace {
    /// Merges per-shard traces into canonical `(time, rank, seq-in-order)`
    /// order — the order one fabric-wide recorder would define. Also used
    /// with a single part to canonicalize a serial trace, so serial and
    /// merged sharded traces of the same run compare equal (given rings
    /// large enough that nothing was shed).
    pub fn merge(parts: Vec<FlightTrace>) -> FlightTrace {
        let mut records: Vec<TraceRecord> = Vec::with_capacity(parts.iter().map(|p| p.records.len()).sum());
        let mut dropped = 0;
        for part in parts {
            dropped += part.dropped;
            records.extend(part.records);
        }
        // Stable: records with equal (time, rank) describe the same node,
        // so their relative order is the owning shard's processing order —
        // identical to the serial engine's.
        records.sort_by_key(|r| (r.at, r.rank));
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        FlightTrace { records, dropped }
    }

    /// Total PFC-paused time per `(node, ingress port)` derived from
    /// `PfcSent` XOFF/XON pairs; open intervals close at `end`. Returned
    /// sorted by descending paused time (ties by node then port), ready for
    /// "top queues by pause-time".
    pub fn pause_time_by_port(&self, end: SimTime) -> Vec<((NodeId, u32), SimDuration)> {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<(NodeId, u32), SimTime> = BTreeMap::new();
        let mut total: BTreeMap<(NodeId, u32), SimDuration> = BTreeMap::new();
        for r in &self.records {
            if let TraceEvent::PfcSent { node, port, pause } = r.event {
                let key = (node, port);
                if pause {
                    open.entry(key).or_insert(r.at);
                } else if let Some(start) = open.remove(&key) {
                    *total.entry(key).or_insert(SimDuration::ZERO) +=
                        r.at.saturating_since(start);
                }
            }
        }
        for (key, start) in open {
            *total.entry(key).or_insert(SimDuration::ZERO) += end.saturating_since(start);
        }
        let mut out: Vec<_> = total.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The PFC wait-for edges (`PfcDelivered` records) in trace order:
    /// `(at, from, to, pause)` with `from`'s egress toward `to` affected.
    pub fn pause_edges(&self) -> Vec<(SimTime, NodeId, NodeId, bool)> {
        self.records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::PfcDelivered { node, src, pause } => {
                    Some((r.at, node, src, pause))
                }
                _ => None,
            })
            .collect()
    }
}

/// Serializes a trace (plus a free-form label naming the run) into the
/// checksummed container. Deterministic: the same trace and label always
/// produce the same bytes.
pub fn write_trace(label: &str, trace: &FlightTrace) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_str(label);
    w.put_u64(trace.dropped);
    w.put_usize(trace.records.len());
    for r in &trace.records {
        w.put_u64(r.at.as_picos());
        w.put_u64(r.rank);
        w.put_u64(r.seq);
        r.event.save(&mut w);
    }
    finalize(TRACE_MAGIC, TRACE_VERSION, &w.into_bytes())
}

/// Opens a trace container, returning the label and the records. Rejects
/// foreign files, version mismatches, truncation and corruption exactly
/// like snapshot files do.
pub fn read_trace(bytes: &[u8]) -> Result<(String, FlightTrace), SnapError> {
    let payload = open(TRACE_MAGIC, TRACE_VERSION, bytes)?;
    let mut r = SnapReader::new(payload);
    let label = r.get_str()?.to_string();
    let dropped = r.get_u64()?;
    let n = r.get_count(RECORD_MIN_BYTES)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let at = SimTime::from_picos(r.get_u64()?);
        let rank = r.get_u64()?;
        let seq = r.get_u64()?;
        let event = TraceEvent::restore(&mut r)?;
        records.push(TraceRecord {
            at,
            rank,
            seq,
            event,
        });
    }
    r.expect_end()?;
    Ok((label, FlightTrace { records, dropped }))
}

/// Wraps a sink, recording [`NetSink::trace`] calls into a flight recorder
/// while forwarding scheduled events untouched. This is the only `trace`
/// override in the workspace: every other sink inherits the no-op default,
/// which is what makes tracing zero-cost when off.
pub struct Recording<'a, S: NetSink + ?Sized> {
    /// The sink real events flow through.
    pub inner: &'a mut S,
    /// The ring capturing trace events.
    pub recorder: &'a mut FlightRecorder,
}

impl<S: NetSink + ?Sized> NetSink for Recording<'_, S> {
    #[inline]
    fn send(&mut self, time: SimTime, event: crate::event::NetEvent) {
        self.inner.send(time, event);
    }

    #[inline]
    fn trace(&mut self, at: SimTime, event: TraceEvent) {
        self.recorder.record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueue {
                node: NodeId(3),
                port: 2,
                queue: 1,
                flow: 7,
                bytes: 1500,
            },
            TraceEvent::Dequeue {
                node: NodeId(3),
                port: 2,
                queue: 1,
                flow: 7,
                bytes: 1500,
            },
            TraceEvent::Drop {
                node: NodeId(4),
                port: 0,
                flow: 9,
                bytes: 1000,
            },
            TraceEvent::Blackhole {
                node: NodeId(5),
                flow: 2,
                bytes: 64,
            },
            TraceEvent::PfcSent {
                node: NodeId(1),
                port: 3,
                pause: true,
            },
            TraceEvent::PfcDelivered {
                node: NodeId(0),
                src: NodeId(1),
                pause: true,
            },
            TraceEvent::FlowPause {
                node: NodeId(2),
                port: 1,
                bits: 11,
                pause: false,
            },
            TraceEvent::QueueActive {
                node: NodeId(3),
                port: 2,
                queue: QUEUE_HIGH_PRIORITY,
            },
            TraceEvent::QueueIdle {
                node: NodeId(3),
                port: 2,
                queue: QUEUE_OVERFLOW,
            },
            TraceEvent::LinkDown {
                a: NodeId(1),
                b: NodeId(2),
            },
            TraceEvent::LinkUp {
                a: NodeId(1),
                b: NodeId(2),
            },
            TraceEvent::LinkRate {
                a: NodeId(0),
                b: NodeId(3),
            },
            TraceEvent::Reroute { index: 4 },
        ]
    }

    #[test]
    fn ring_keeps_the_last_n_and_counts_shed_records() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10u64 {
            rec.record(
                SimTime::from_nanos(i),
                TraceEvent::Reroute { index: i as u32 },
            );
        }
        assert_eq!(rec.len(), 3);
        let trace = rec.finish();
        assert_eq!(trace.dropped, 7);
        let kept: Vec<u32> = trace
            .records
            .iter()
            .map(|r| match r.event {
                TraceEvent::Reroute { index } => index,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(trace.records[0].seq, 7, "seq numbers survive shedding");
    }

    #[test]
    fn container_round_trips_byte_stably() {
        let mut rec = FlightRecorder::new(1024);
        for (i, e) in sample_events().into_iter().enumerate() {
            rec.record(SimTime::from_nanos(i as u64 * 10), e);
        }
        let trace = rec.finish();
        let bytes = write_trace("unit-test seed=7", &trace);
        let (label, reread) = read_trace(&bytes).expect("container opens");
        assert_eq!(label, "unit-test seed=7");
        assert_eq!(reread, trace);
        // write -> read -> write is byte-stable.
        assert_eq!(write_trace(&label, &reread), bytes);
    }

    #[test]
    fn container_rejects_damage() {
        let mut rec = FlightRecorder::new(16);
        rec.record(
            SimTime::from_nanos(5),
            TraceEvent::PfcSent {
                node: NodeId(1),
                port: 0,
                pause: true,
            },
        );
        let bytes = write_trace("x", &rec.finish());
        // Foreign magic.
        assert_eq!(
            read_trace(b"not a trace").unwrap_err(),
            SnapError::BadMagic
        );
        // A snapshot-magic file is not a trace.
        let snapshot_like = finalize(b"BFCSNAP\0", TRACE_VERSION, b"payload");
        assert_eq!(read_trace(&snapshot_like).unwrap_err(), SnapError::BadMagic);
        // Wrong version.
        let other_version = finalize(TRACE_MAGIC, TRACE_VERSION + 1, b"payload");
        assert_eq!(
            read_trace(&other_version).unwrap_err(),
            SnapError::BadVersion(TRACE_VERSION + 1)
        );
        // Truncation at every prefix.
        for n in 0..bytes.len() {
            assert!(read_trace(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
        // Any single-byte flip is rejected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(read_trace(&bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        let mut rec = FlightRecorder::new(64);
        for e in sample_events() {
            rec.record(SimTime::from_nanos(1), e);
        }
        let trace = rec.finish();
        let (_, reread) = read_trace(&write_trace("", &trace)).unwrap();
        assert_eq!(reread, trace);
        for r in &trace.records {
            assert!(!r.event.render().is_empty());
            assert!(!r.event.kind().is_empty());
        }
    }

    #[test]
    fn merge_reproduces_one_recorder_from_shard_parts() {
        // Interleave records for two "shards" through one recorder and
        // through two per-shard recorders; merging the parts must reproduce
        // the whole (canonicalized) trace.
        let mut whole = FlightRecorder::new(1024);
        let mut s0 = FlightRecorder::new(1024);
        let mut s1 = FlightRecorder::new(1024);
        let shard_of = |n: NodeId| n.0 % 2;
        let events = [
            (10u64, TraceEvent::QueueActive { node: NodeId(0), port: 1, queue: 0 }),
            (10, TraceEvent::Enqueue { node: NodeId(1), port: 0, queue: 0, flow: 1, bytes: 100 }),
            (10, TraceEvent::Enqueue { node: NodeId(0), port: 1, queue: 0, flow: 2, bytes: 100 }),
            (10, TraceEvent::Enqueue { node: NodeId(0), port: 1, queue: 0, flow: 3, bytes: 200 }),
            (20, TraceEvent::Dequeue { node: NodeId(0), port: 1, queue: 0, flow: 2, bytes: 100 }),
            (20, TraceEvent::PfcSent { node: NodeId(1), port: 0, pause: true }),
        ];
        for (t, e) in events {
            whole.record(SimTime::from_nanos(t), e);
            let shard = if shard_of(e.node().unwrap()) == 0 { &mut s0 } else { &mut s1 };
            shard.record(SimTime::from_nanos(t), e);
        }
        let canonical_whole = FlightTrace::merge(vec![whole.finish()]);
        let merged = FlightTrace::merge(vec![s0.finish(), s1.finish()]);
        assert_eq!(merged, canonical_whole);
    }

    #[test]
    fn pause_time_ranks_ports_by_paused_duration() {
        let mut rec = FlightRecorder::new(64);
        let xoff = |node, port| TraceEvent::PfcSent { node: NodeId(node), port, pause: true };
        let xon = |node, port| TraceEvent::PfcSent { node: NodeId(node), port, pause: false };
        rec.record(SimTime::from_nanos(100), xoff(1, 0));
        rec.record(SimTime::from_nanos(300), xon(1, 0)); // 200 ns
        rec.record(SimTime::from_nanos(100), xoff(2, 3)); // open until end
        let trace = rec.finish();
        let top = trace.pause_time_by_port(SimTime::from_nanos(600));
        assert_eq!(top[0].0, (NodeId(2), 3));
        assert_eq!(top[0].1, SimDuration::from_nanos(500));
        assert_eq!(top[1].0, (NodeId(1), 0));
        assert_eq!(top[1].1, SimDuration::from_nanos(200));
    }

    #[test]
    fn pause_edges_surface_pfc_deliveries() {
        let mut rec = FlightRecorder::new(64);
        rec.record(
            SimTime::from_nanos(50),
            TraceEvent::PfcDelivered { node: NodeId(4), src: NodeId(6), pause: true },
        );
        rec.record(
            SimTime::from_nanos(70),
            TraceEvent::PfcDelivered { node: NodeId(4), src: NodeId(6), pause: false },
        );
        let edges = rec.finish().pause_edges();
        assert_eq!(
            edges,
            vec![
                (SimTime::from_nanos(50), NodeId(4), NodeId(6), true),
                (SimTime::from_nanos(70), NodeId(4), NodeId(6), false),
            ]
        );
    }
}
