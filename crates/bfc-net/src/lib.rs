//! # bfc-net — packet-level data-center network substrate
//!
//! This crate is the "ns-3 substitute" for the Backpressure Flow Control
//! reproduction: everything between the host NIC and the wire is modelled
//! here at per-packet granularity.
//!
//! * [`packet`] — data / ACK / CNP / PFC / flow-pause frames and HPCC INT
//!   telemetry.
//! * [`link`] — full-duplex links with rate and propagation delay.
//! * [`queue`] + [`port`] — physical FIFO queues, deficit round robin, the
//!   strict-priority control and high-priority queues, and per-queue pause.
//! * [`buffer`] — the shared-memory buffer model with dynamic PFC thresholds.
//! * [`policy`] — the [`policy::SwitchPolicy`] trait that queue-assignment /
//!   flow-control schemes implement (FIFO and stochastic fair queueing live
//!   here; the BFC policy itself lives in the `bfc-core` crate).
//! * [`switch`] — the shared-buffer switch: admission, ECN marking, INT,
//!   PFC generation, scheduling and forwarding.
//! * [`topology`] + [`routing`] — fat-tree builders (the paper's T1 and T2),
//!   the cross-data-center topology, and ECMP up/down routing.
//! * [`dynamics`] — scheduled link faults, degradation and repair: the live
//!   link-state overlay, fault schedules, and the stable-rehash routing
//!   re-convergence they drive.
//! * [`event`] — the global event vocabulary used by the simulation driver.
//! * [`trace`] — flight-recorder tracing: structured observability events
//!   behind the [`event::NetSink`] seam, a bounded last-N ring, and the
//!   binary trace container.
//!
//! The crate deliberately knows nothing about congestion-control algorithms
//! (DCQCN, HPCC, …); those live in `bfc-transport` and only interact with
//! the fabric through packets.

pub mod buffer;
pub mod config;
pub mod dynamics;
pub mod event;
pub mod link;
pub mod packet;
pub mod policy;
pub mod port;
pub mod queue;
pub mod routing;
pub mod switch;
pub mod topology;
pub mod trace;
pub mod types;

pub use buffer::SharedBuffer;
pub use config::{EcnConfig, PfcConfig, SwitchConfig};
pub use dynamics::{DynamicsError, FaultEvent, FaultSchedule, LinkAction, LinkStateMap};
pub use event::{NetEvent, TransportTimer};
pub use link::Link;
pub use packet::{IntHop, IntPath, Packet, PacketKind, PauseFrame, MAX_INT_HOPS};
pub use policy::{
    EnqueueCtx, EnqueueDecision, FifoPolicy, PolicyStats, ProbeStats, QueueTarget, SfqPolicy,
    SwitchPolicy,
};
pub use port::Port;
pub use queue::PhysQueue;
pub use routing::RoutingTables;
pub use switch::Switch;
pub use topology::{NodeKind, Topology, TopologyBuilder};
pub use trace::{FlightRecorder, FlightTrace, TraceEvent, TraceRecord};
pub use types::{FlowId, NodeId, PortId};
