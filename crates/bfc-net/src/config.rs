//! Switch configuration: ECN marking, PFC thresholds, scheduling and buffer
//! sizing.

use bfc_sim::SimDuration;

/// RED/ECN marking configuration used by the DCQCN family of schemes.
///
/// The paper configures marking to trigger before PFC: `Kmin = 100 KB`,
/// `Kmax = 400 KB`. Marking probability rises linearly from 0 at `Kmin`
/// to `pmax` at `Kmax`, and is 1 above `Kmax`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    /// Queue length below which no packet is marked.
    pub kmin_bytes: u64,
    /// Queue length above which every packet is marked.
    pub kmax_bytes: u64,
    /// Marking probability at `kmax_bytes`.
    pub pmax: f64,
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig {
            kmin_bytes: 100_000,
            kmax_bytes: 400_000,
            pmax: 0.2,
        }
    }
}

impl EcnConfig {
    /// Marking probability for an (egress-port) queue of `qlen` bytes.
    pub fn marking_probability(&self, qlen: u64) -> f64 {
        if qlen <= self.kmin_bytes {
            0.0
        } else if qlen >= self.kmax_bytes {
            1.0
        } else {
            let span = (self.kmax_bytes - self.kmin_bytes) as f64;
            self.pmax * (qlen - self.kmin_bytes) as f64 / span
        }
    }
}

/// Priority Flow Control configuration.
///
/// The paper triggers PFC "when traffic from an input port occupies more than
/// 11% of the free buffer", i.e. a dynamic threshold proportional to the
/// remaining shared buffer. Resume uses a hysteresis fraction of the pause
/// threshold so that pause/resume frames do not oscillate every packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfcConfig {
    /// Whether PFC is enabled at all (Ideal-FQ and the Fig. 2 experiment run
    /// without it).
    pub enabled: bool,
    /// Fraction of the *free* shared buffer one ingress may occupy before a
    /// pause frame is sent upstream.
    pub threshold_fraction: f64,
    /// An ingress resumes its upstream once its occupancy falls below
    /// `resume_fraction` of the pause threshold at which it paused.
    pub resume_fraction: f64,
}

impl Default for PfcConfig {
    fn default() -> Self {
        PfcConfig {
            enabled: true,
            threshold_fraction: 0.11,
            resume_fraction: 0.85,
        }
    }
}

impl PfcConfig {
    /// A configuration with PFC turned off.
    pub fn disabled() -> Self {
        PfcConfig {
            enabled: false,
            ..PfcConfig::default()
        }
    }

    /// The pause threshold in bytes given the currently free shared buffer.
    pub fn pause_threshold(&self, free_bytes: u64) -> u64 {
        (self.threshold_fraction * free_bytes as f64) as u64
    }
}

/// Full configuration of one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Number of physical queues per egress port available to the queue
    /// assignment policy (32 in the paper's hardware model).
    pub queues_per_port: usize,
    /// Shared packet buffer capacity in bytes (`u64::MAX` models the
    /// infinite-buffer baselines). The paper's switches have 12 MB.
    pub buffer_bytes: u64,
    /// ECN marking (None disables marking; BFC and HPCC do not use ECN).
    pub ecn: Option<EcnConfig>,
    /// PFC configuration.
    pub pfc: PfcConfig,
    /// Append HPCC INT telemetry to data packets on dequeue.
    pub int_enabled: bool,
    /// Interval between BFC pause-frame emissions (τ). The paper uses half
    /// the one-hop RTT (1 µs for its 2 µs hop RTT).
    pub pause_frame_interval: SimDuration,
    /// Maximum transmission unit in bytes (DRR quantum).
    pub mtu_bytes: u32,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            queues_per_port: 32,
            buffer_bytes: 12_000_000,
            ecn: None,
            pfc: PfcConfig::default(),
            int_enabled: false,
            pause_frame_interval: SimDuration::from_micros(1),
            mtu_bytes: 1000,
        }
    }
}

impl SwitchConfig {
    /// Configuration used by the DCQCN family: single FIFO semantics are
    /// expressed by the policy, this just turns ECN on.
    pub fn with_ecn(mut self, ecn: EcnConfig) -> Self {
        self.ecn = Some(ecn);
        self
    }

    /// Enables HPCC INT telemetry.
    pub fn with_int(mut self) -> Self {
        self.int_enabled = true;
        self
    }

    /// Disables PFC.
    pub fn without_pfc(mut self) -> Self {
        self.pfc = PfcConfig::disabled();
        self
    }

    /// Sets the shared buffer size.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Effectively infinite buffering (Ideal-FQ, SFQ+InfBuffer).
    pub fn with_infinite_buffer(mut self) -> Self {
        self.buffer_bytes = u64::MAX;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_probability_is_piecewise_linear() {
        let e = EcnConfig::default();
        assert_eq!(e.marking_probability(0), 0.0);
        assert_eq!(e.marking_probability(100_000), 0.0);
        assert_eq!(e.marking_probability(400_000), 1.0);
        assert_eq!(e.marking_probability(1_000_000), 1.0);
        let mid = e.marking_probability(250_000);
        assert!((mid - 0.1).abs() < 1e-9, "got {mid}");
    }

    #[test]
    fn pfc_threshold_tracks_free_buffer() {
        let p = PfcConfig::default();
        assert_eq!(p.pause_threshold(1_000_000), 110_000);
        assert_eq!(p.pause_threshold(0), 0);
        assert!(!PfcConfig::disabled().enabled);
    }

    #[test]
    fn builder_methods_compose() {
        let c = SwitchConfig::default()
            .with_ecn(EcnConfig::default())
            .with_int()
            .without_pfc()
            .with_buffer_bytes(5_000_000);
        assert!(c.ecn.is_some());
        assert!(c.int_enabled);
        assert!(!c.pfc.enabled);
        assert_eq!(c.buffer_bytes, 5_000_000);
        assert_eq!(
            SwitchConfig::default().with_infinite_buffer().buffer_bytes,
            u64::MAX
        );
    }
}
