//! The shared-buffer switch.
//!
//! A [`Switch`] owns one egress [`Port`] per cable, a [`SharedBuffer`], and a
//! queue-assignment [`SwitchPolicy`]. Its packet path is:
//!
//! 1. **Link control frames** (PFC pause/resume, BFC flow-pause bloom
//!    filters) update the egress facing the sender and are consumed.
//! 2. **Forwarded packets** are admitted against the shared buffer (dropping
//!    on overflow), accounted per ingress for the dynamic PFC threshold,
//!    optionally ECN-marked, placed in the queue chosen by the policy and
//!    scheduled out of the egress port with strict priority for control
//!    traffic, then the high-priority queue, then deficit round robin.
//! 3. On dequeue the policy observes the departure (BFC reclaims queues and
//!    schedules resumes there) and, when HPCC telemetry is enabled, an INT
//!    record is appended to data packets.
//!
//! Pause frames and PFC frames are delivered out of band: they experience the
//! link's serialization and propagation delay but never wait behind data,
//! matching how MAC control frames behave on real hardware.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{Hist, SimRng, SimTime};

use crate::buffer::SharedBuffer;
use crate::config::SwitchConfig;
use crate::event::{NetEvent, NetSink};
use crate::packet::{Packet, PacketKind};
use crate::policy::{DequeueCtx, EnqueueCtx, QueueTarget, SwitchPolicy};
use crate::port::Port;
use crate::routing::RoutingTables;
use crate::topology::PortSpec;
use crate::trace::{self, TraceEvent};
use crate::types::NodeId;

/// Maps a policy queue target onto the trace-record queue encoding.
fn queue_code(target: QueueTarget) -> u32 {
    match target {
        QueueTarget::Control => trace::QUEUE_CONTROL,
        QueueTarget::HighPriority => trace::QUEUE_HIGH_PRIORITY,
        QueueTarget::Overflow => trace::QUEUE_OVERFLOW,
        QueueTarget::Phys(q) => q as u32,
    }
}

/// Counters a switch exposes to the experiment harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchCounters {
    /// Data/ACK/CNP packets received for forwarding.
    pub rx_packets: u64,
    /// Packets dropped at admission because the shared buffer was full.
    pub drops: u64,
    /// Data packets marked with ECN CE.
    pub ecn_marked: u64,
    /// PFC pause frames sent upstream.
    pub pfc_pauses_sent: u64,
    /// BFC flow-pause frames sent upstream.
    pub flow_pause_frames_sent: u64,
    /// Data packets lost to network dynamics at this switch: flushed from a
    /// dead egress or arriving with no route to their destination.
    pub blackholed: u64,
}

/// A shared-buffer switch.
pub struct Switch {
    /// This switch's node ID.
    pub id: NodeId,
    /// Static configuration.
    pub config: SwitchConfig,
    ports: Vec<Port>,
    buffer: SharedBuffer,
    policy: Box<dyn SwitchPolicy>,
    rng: SimRng,
    pause_timer_active: Vec<bool>,
    counters: SwitchCounters,
    /// Egress data-queue depth (bytes) seen by every
    /// [`DEPTH_SAMPLE_STRIDE`]-th data packet as it enqueues — the
    /// distribution behind the registry's `bfc_switch_queue_depth_bytes`
    /// histogram.
    depth_hist: Hist,
    /// Data enqueues seen so far; drives the deterministic sampling phase
    /// (switch-local, so it is engine-independent and snapshot-safe).
    depth_ticks: u64,
}

/// Every `DEPTH_SAMPLE_STRIDE`-th data enqueue samples the queue-depth
/// histogram. Sampling keeps the observation off the per-packet budget
/// (full-rate observation costs ~10% on the paper lineup; the stride keeps
/// it under 2%) while the fixed stride and switch-local phase keep the
/// distribution deterministic across engines and shard counts.
const DEPTH_SAMPLE_STRIDE: u64 = 8;

impl Switch {
    /// Builds a switch from its ports in the topology. `policy` decides queue
    /// assignment and per-flow pausing; the `rng` seed only affects ECN
    /// marking randomness.
    pub fn new(
        id: NodeId,
        config: SwitchConfig,
        port_specs: &[PortSpec],
        policy: Box<dyn SwitchPolicy>,
        rng_seed: u64,
    ) -> Self {
        let ports: Vec<Port> = port_specs
            .iter()
            .map(|spec| {
                Port::new(
                    spec.link,
                    Some((spec.peer, spec.peer_port)),
                    config.queues_per_port,
                    config.mtu_bytes,
                )
            })
            .collect();
        let buffer = SharedBuffer::new(config.buffer_bytes, ports.len());
        let pause_timer_active = vec![false; ports.len()];
        Switch {
            id,
            config,
            ports,
            buffer,
            policy,
            rng: SimRng::new(rng_seed ^ 0x5157_1c48_0000_0000 ^ id.0 as u64),
            pause_timer_active,
            counters: SwitchCounters::default(),
            depth_hist: Hist::new(),
            depth_ticks: 0,
        }
    }

    /// The queue-depth-at-enqueue distribution (bytes already queued on the
    /// chosen egress when the sampled data packet joined it), sampled every
    /// [`DEPTH_SAMPLE_STRIDE`]-th data enqueue.
    pub fn depth_hist(&self) -> &Hist {
        &self.depth_hist
    }

    /// Read access to a port (tests and metrics).
    pub fn port(&self, i: u32) -> &Port {
        &self.ports[i as usize]
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The shared buffer (metrics).
    pub fn buffer(&self) -> &SharedBuffer {
        &self.buffer
    }

    /// Counter snapshot.
    pub fn counters(&self) -> SwitchCounters {
        let mut c = self.counters;
        c.drops = self.buffer.drops();
        c
    }

    /// The policy's counters.
    pub fn policy_stats(&self) -> crate::policy::PolicyStats {
        self.policy.stats()
    }

    /// The policy's flow-table probing counters (observability registry).
    pub fn probe_stats(&self) -> crate::policy::ProbeStats {
        self.policy.probe_stats()
    }

    /// Name of the installed policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Total time the egress toward each peer has spent PFC-paused.
    pub fn total_pfc_paused_time(&self, now: SimTime) -> bfc_sim::SimDuration {
        self.ports
            .iter()
            .fold(bfc_sim::SimDuration::ZERO, |acc, p| {
                acc + p.pfc_paused_time(now)
            })
    }

    /// Serializes all mutable switch state — ports, shared buffer, policy,
    /// RNG, pause timers, counters — for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_u64(self.counters.rx_packets);
        w.put_u64(self.counters.drops);
        w.put_u64(self.counters.ecn_marked);
        w.put_u64(self.counters.pfc_pauses_sent);
        w.put_u64(self.counters.flow_pause_frames_sent);
        w.put_u64(self.counters.blackholed);
        w.put_usize(self.ports.len());
        for &active in &self.pause_timer_active {
            w.put_bool(active);
        }
        self.buffer.save_state(w);
        for port in &self.ports {
            port.save_state(w);
        }
        self.policy.save_state(w);
        self.depth_hist.save_state(w);
        w.put_u64(self.depth_ticks);
    }

    /// Restores state captured by [`Switch::save_state`] into this switch,
    /// which must have been freshly built from the same topology, config and
    /// policy scheme.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let state = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        self.rng = SimRng::from_state(state);
        self.counters.rx_packets = r.get_u64()?;
        self.counters.drops = r.get_u64()?;
        self.counters.ecn_marked = r.get_u64()?;
        self.counters.pfc_pauses_sent = r.get_u64()?;
        self.counters.flow_pause_frames_sent = r.get_u64()?;
        self.counters.blackholed = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.ports.len() {
            return Err(SnapError::Corrupt("switch port count mismatch"));
        }
        for active in &mut self.pause_timer_active {
            *active = r.get_bool()?;
        }
        self.buffer.restore_state(r)?;
        for port in &mut self.ports {
            port.restore_state(r)?;
        }
        self.policy.restore_state(r)?;
        self.depth_hist = Hist::restore_state(r)?;
        self.depth_ticks = r.get_u64()?;
        Ok(())
    }

    /// Handles a packet whose last bit arrived on `ingress` at `now`.
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        ingress: u32,
        packet: Packet,
        routes: &RoutingTables,
        events: &mut impl NetSink,
    ) {
        match &packet.kind {
            PacketKind::PfcPause { pause } => {
                let pause = *pause;
                self.ports[ingress as usize].set_pfc_paused(pause, now);
                if !pause {
                    self.try_transmit(now, ingress, events);
                }
            }
            PacketKind::FlowPause { frame } => {
                // PauseFrame stores its bits inline, so installing the frame
                // is a plain copy — no allocation on the control path.
                self.ports[ingress as usize].set_pause_frame(Some(**frame));
                self.try_transmit(now, ingress, events);
            }
            _ => self.forward(now, ingress, packet, routes, events),
        }
    }

    fn forward(
        &mut self,
        now: SimTime,
        ingress: u32,
        mut packet: Packet,
        routes: &RoutingTables,
        events: &mut impl NetSink,
    ) {
        self.counters.rx_packets += 1;
        let Some(egress) = routes.try_egress_port(self.id, packet.dst, packet.flow.0 as u64) else {
            // The destination is unreachable after a link failure: blackhole
            // the packet; Go-Back-N at the sender recovers once routing (or
            // the link) comes back.
            if packet.is_data() {
                self.counters.blackholed += 1;
                events.trace(
                    now,
                    TraceEvent::Blackhole {
                        node: self.id,
                        flow: packet.flow.0,
                        bytes: packet.size_bytes,
                    },
                );
            }
            return;
        };
        // `egress == ingress` is legitimate after a routing re-convergence: a
        // packet that was in flight toward a now-detoured region is sent back
        // the way it came. The recomputed tables are shortest-path over the
        // live graph, so distances strictly decrease from here and the packet
        // still cannot loop.

        if !self.buffer.admit(packet.size_bytes, ingress) {
            // Dropped: Go-Back-N at the sender recovers it.
            events.trace(
                now,
                TraceEvent::Drop {
                    node: self.id,
                    port: egress,
                    flow: packet.flow.0,
                    bytes: packet.size_bytes,
                },
            );
            return;
        }
        self.maybe_send_pfc(now, ingress, events);

        let target = if packet.control_priority {
            QueueTarget::Control
        } else {
            let decision = {
                let ctx = EnqueueCtx {
                    now,
                    switch: self.id,
                    ingress,
                    egress,
                    port: &self.ports[egress as usize],
                };
                self.policy.on_enqueue(&ctx, &packet)
            };
            if decision.start_pause_timer && !self.pause_timer_active[ingress as usize] {
                self.pause_timer_active[ingress as usize] = true;
                events.send(
                    now + self.config.pause_frame_interval,
                    NetEvent::PauseFrameTimer {
                        node: self.id,
                        port: ingress,
                    },
                );
            }
            decision.target
        };

        if packet.is_data() {
            if let Some(ecn) = &self.config.ecn {
                let qlen = self.ports[egress as usize].data_queued_bytes();
                let p = ecn.marking_probability(qlen);
                if p > 0.0 && self.rng.chance(p) {
                    packet.ecn_ce = true;
                    self.counters.ecn_marked += 1;
                }
            }
        }

        let queue = queue_code(target);
        let (flow, bytes, is_data) = (packet.flow.0, packet.size_bytes, packet.is_data());
        let was_empty = self.ports[egress as usize].target_is_empty(target);
        if is_data {
            if self.depth_ticks % DEPTH_SAMPLE_STRIDE == 0 {
                self.depth_hist
                    .observe(self.ports[egress as usize].data_queued_bytes());
            }
            self.depth_ticks = self.depth_ticks.wrapping_add(1);
        }
        self.ports[egress as usize].enqueue(target, packet, ingress);
        if is_data {
            events.trace(
                now,
                TraceEvent::Enqueue {
                    node: self.id,
                    port: egress,
                    queue,
                    flow,
                    bytes,
                },
            );
        }
        if was_empty {
            events.trace(
                now,
                TraceEvent::QueueActive {
                    node: self.id,
                    port: egress,
                    queue,
                },
            );
        }
        self.try_transmit(now, egress, events);
    }

    /// Sends a PFC pause/resume to the upstream of `ingress` if the dynamic
    /// threshold was just crossed.
    fn maybe_send_pfc(&mut self, now: SimTime, ingress: u32, events: &mut impl NetSink) {
        if let Some(pause) = self.buffer.pfc_transition(ingress, &self.config.pfc) {
            let port = &self.ports[ingress as usize];
            if let Some((peer, peer_port)) = port.peer {
                let frame = Packet::pfc(self.id, peer, pause);
                let arrival = port.link.arrival_time(now, frame.size_bytes);
                self.counters.pfc_pauses_sent += u64::from(pause);
                events.trace(
                    now,
                    TraceEvent::PfcSent {
                        node: self.id,
                        port: ingress,
                        pause,
                    },
                );
                events.send(
                    arrival,
                    NetEvent::PacketArrive {
                        node: peer,
                        port: peer_port,
                        packet: frame,
                    },
                );
            }
        }
    }

    /// The egress at `port` finished serializing a packet.
    pub fn handle_tx_complete(
        &mut self,
        now: SimTime,
        port: u32,
        events: &mut impl NetSink,
    ) {
        self.ports[port as usize].busy = false;
        self.try_transmit(now, port, events);
    }

    /// Periodic BFC pause-frame opportunity for `ingress`.
    pub fn handle_pause_timer(
        &mut self,
        now: SimTime,
        ingress: u32,
        events: &mut impl NetSink,
    ) {
        let tick = self.policy.pause_frame_tick(now, ingress);
        if let Some(frame) = tick.frame {
            let port = &self.ports[ingress as usize];
            if let Some((peer, peer_port)) = port.peer {
                let packet = Packet::flow_pause(self.id, peer, frame);
                let arrival = port.link.arrival_time(now, packet.size_bytes);
                self.counters.flow_pause_frames_sent += 1;
                events.trace(
                    now,
                    TraceEvent::FlowPause {
                        node: self.id,
                        port: ingress,
                        bits: frame.popcount(),
                        pause: !frame.is_empty(),
                    },
                );
                events.send(
                    arrival,
                    NetEvent::PacketArrive {
                        node: peer,
                        port: peer_port,
                        packet,
                    },
                );
            }
        }
        if tick.reschedule {
            events.send(
                now + self.config.pause_frame_interval,
                NetEvent::PauseFrameTimer {
                    node: self.id,
                    port: ingress,
                },
            );
        } else {
            self.pause_timer_active[ingress as usize] = false;
        }
    }

    /// Takes the egress at `port` down: flushes every queued packet (releasing
    /// shared-buffer space and counting flushed data packets as blackholed),
    /// clears the MAC-level pause state, and re-evaluates PFC for every
    /// ingress whose buffer usage just dropped. Returns the number of data
    /// packets blackholed by the flush.
    pub fn handle_link_down(
        &mut self,
        now: SimTime,
        port: u32,
        events: &mut impl NetSink,
    ) -> u64 {
        let idx = port as usize;
        self.ports[idx].set_up(false, now);
        let flushed = self.ports[idx].flush_all();
        let mut blackholed = 0;
        for (qp, from_queue) in flushed {
            self.buffer.release(qp.packet.size_bytes, qp.ingress);
            if qp.packet.is_data() {
                blackholed += 1;
                events.trace(
                    now,
                    TraceEvent::Blackhole {
                        node: self.id,
                        flow: qp.packet.flow.0,
                        bytes: qp.packet.size_bytes,
                    },
                );
            }
            if from_queue != QueueTarget::Control {
                let ctx = DequeueCtx {
                    now,
                    switch: self.id,
                    ingress: qp.ingress,
                    egress: port,
                    port: &self.ports[idx],
                    queue: from_queue,
                };
                // Tell the policy the packet left the switch so flow state
                // (queue residency, pause bookkeeping) does not leak.
                self.policy.on_dequeue(&ctx, &qp.packet);
            }
        }
        self.counters.blackholed += blackholed;
        // Releasing a burst of buffer can cross PFC resume thresholds.
        for ingress in 0..self.ports.len() {
            self.maybe_send_pfc(now, ingress as u32, events);
        }
        blackholed
    }

    /// Brings the egress at `port` back up and restarts transmission.
    pub fn handle_link_up(&mut self, now: SimTime, port: u32, events: &mut impl NetSink) {
        self.ports[port as usize].set_up(true, now);
        self.try_transmit(now, port, events);
    }

    /// Applies a link-rate change (degradation / repair) to the egress at
    /// `port`. A packet already being serialized finishes at the old rate.
    pub fn set_port_rate(&mut self, port: u32, gbps: f64) {
        self.ports[port as usize].set_link_rate(gbps);
    }

    /// Starts transmitting the next packet on `port` if the egress is free.
    fn try_transmit(&mut self, now: SimTime, port: u32, events: &mut impl NetSink) {
        let idx = port as usize;
        if self.ports[idx].busy || !self.ports[idx].is_up() || self.ports[idx].is_pfc_paused() {
            return;
        }
        let Some((queued, from_queue)) = self.ports[idx].dequeue_next() else {
            return;
        };
        let mut packet = queued.packet;
        let ingress = queued.ingress;

        let queue = queue_code(from_queue);
        if packet.is_data() {
            events.trace(
                now,
                TraceEvent::Dequeue {
                    node: self.id,
                    port,
                    queue,
                    flow: packet.flow.0,
                    bytes: packet.size_bytes,
                },
            );
        }
        if self.ports[idx].target_is_empty(from_queue) {
            events.trace(
                now,
                TraceEvent::QueueIdle {
                    node: self.id,
                    port,
                    queue,
                },
            );
        }

        self.buffer.release(packet.size_bytes, ingress);
        self.maybe_send_pfc(now, ingress, events);

        if from_queue != QueueTarget::Control {
            let ctx = DequeueCtx {
                now,
                switch: self.id,
                ingress,
                egress: port,
                port: &self.ports[idx],
                queue: from_queue,
            };
            self.policy.on_dequeue(&ctx, &packet);
        }

        self.ports[idx].note_transmitted(&packet);
        if self.config.int_enabled && packet.is_data() {
            let p = &self.ports[idx];
            packet.int.push(crate::packet::IntHop {
                qlen_bytes: p.data_queued_bytes(),
                tx_bytes: p.tx_data_bytes(),
                timestamp_ps: now.as_picos(),
                link_gbps: p.link.rate_gbps,
            });
        }

        let p = &mut self.ports[idx];
        let serialization = p.link.serialization(packet.size_bytes);
        let arrival = now + serialization + p.link.propagation;
        let (peer, peer_port) = p.peer.expect("transmitting on a connected port");
        p.busy = true;
        events.send(
            now + serialization,
            NetEvent::TxComplete {
                node: self.id,
                port,
            },
        );
        events.send(
            arrival,
            NetEvent::PacketArrive {
                node: peer,
                port: peer_port,
                packet,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcnConfig;
    use bfc_sim::EventQueue;
    use crate::link::Link;
    use crate::policy::FifoPolicy;
    use crate::topology::{fat_tree, FatTreeParams};
    use crate::types::FlowId;
    use bfc_sim::SimDuration;

    /// Builds the tiny fat tree and returns (topology, routes, the first ToR
    /// switch with a FIFO policy).
    fn tor_under_test(config: SwitchConfig) -> (crate::topology::Topology, RoutingTables, Switch) {
        let topo = fat_tree(FatTreeParams::tiny());
        let routes = RoutingTables::compute(&topo);
        let tor = topo.switches()[0];
        let sw = Switch::new(
            tor,
            config,
            topo.ports(tor),
            Box::new(FifoPolicy::new()),
            1,
        );
        (topo, routes, sw)
    }

    fn data_packet(flow: u32, src: usize, dst: usize, seq: u64) -> Packet {
        Packet::data(
            FlowId(flow),
            NodeId(src as u32),
            NodeId(dst as u32),
            seq,
            1000,
            flow,
            seq == 0,
        )
    }

    #[test]
    fn forwards_toward_destination_host() {
        let (topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        // Host 0 and host 1 are both on ToR 0 in the tiny topology.
        let pkt = data_packet(1, 0, 1, 0);
        sw.handle_packet(SimTime::ZERO, 0, pkt, &routes, &mut events);
        // A TxComplete for the switch and a PacketArrive for host 1 are scheduled.
        let mut saw_tx = false;
        let mut saw_arrival = false;
        while let Some((t, e)) = events.pop() {
            match e {
                NetEvent::TxComplete { node, .. } => {
                    assert_eq!(node, sw.id);
                    assert_eq!(t.as_nanos(), 80);
                    saw_tx = true;
                }
                NetEvent::PacketArrive { node, packet, .. } => {
                    assert_eq!(node, NodeId(1));
                    assert!(packet.is_data());
                    assert_eq!(t.as_nanos(), 1080);
                    saw_arrival = true;
                }
                _ => {}
            }
        }
        assert!(saw_tx && saw_arrival);
        assert_eq!(sw.counters().rx_packets, 1);
        let _ = topo;
    }

    #[test]
    fn busy_port_serializes_back_to_back() {
        let (_topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, 0), &routes, &mut events);
        sw.handle_packet(SimTime::ZERO, 2, data_packet(2, 2, 1, 0), &routes, &mut events);
        // Only one TxComplete so far: the port is busy with the first packet.
        let tx_completes = |q: &EventQueue<NetEvent>| q.len();
        assert_eq!(tx_completes(&events), 2, "one TxComplete + one arrival");
        // Drive the TxComplete; the second packet should then be serialized.
        let mut deliveries = 0;
        while let Some((t, e)) = events.pop() {
            match e {
                NetEvent::TxComplete { port, .. } => sw.handle_tx_complete(t, port, &mut events),
                NetEvent::PacketArrive { node, .. } => {
                    assert_eq!(node, NodeId(1));
                    deliveries += 1;
                }
                _ => {}
            }
        }
        assert_eq!(deliveries, 2);
    }

    #[test]
    fn drops_when_buffer_full_without_pfc() {
        let config = SwitchConfig::default()
            .without_pfc()
            .with_buffer_bytes(2_500);
        let (_topo, routes, mut sw) = tor_under_test(config);
        let mut events = EventQueue::new();
        // Host 1's egress can hold at most 2 queued packets (2.5 KB buffer);
        // the first is immediately being transmitted, so of 6 arriving
        // packets some must be dropped.
        for seq in 0..6 {
            sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, seq), &routes, &mut events);
        }
        assert!(sw.counters().drops >= 3, "drops = {}", sw.counters().drops);
    }

    #[test]
    fn pfc_pause_frame_sent_upstream_when_threshold_crossed() {
        let config = SwitchConfig::default().with_buffer_bytes(20_000);
        let (_topo, routes, mut sw) = tor_under_test(config);
        let mut events = EventQueue::new();
        // Flood from ingress 0 (host 0) toward host 1. Free buffer shrinks,
        // so the 11% dynamic threshold will be crossed quickly.
        for seq in 0..10 {
            sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, seq), &routes, &mut events);
        }
        let mut pfc_to_host0 = 0;
        while let Some((_, e)) = events.pop() {
            if let NetEvent::PacketArrive { node, packet, .. } = e {
                if let PacketKind::PfcPause { pause: true } = packet.kind {
                    assert_eq!(node, NodeId(0));
                    pfc_to_host0 += 1;
                }
            }
        }
        assert!(pfc_to_host0 >= 1);
        assert!(sw.counters().pfc_pauses_sent >= 1);
    }

    #[test]
    fn pfc_pause_stops_egress_until_resume() {
        let (_topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        // Pause the egress toward host 1 (port index = host 1's port on ToR 0
        // is its local index 1 in the tiny topology).
        sw.handle_packet(
            SimTime::ZERO,
            1,
            Packet::pfc(NodeId(1), sw.id, true),
            &routes,
            &mut events,
        );
        sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, 0), &routes, &mut events);
        assert!(events.is_empty(), "nothing transmitted while paused");
        // Resume: the queued packet must now flow.
        sw.handle_packet(
            SimTime::from_micros(5),
            1,
            Packet::pfc(NodeId(1), sw.id, false),
            &routes,
            &mut events,
        );
        assert!(!events.is_empty());
        assert!(sw
            .port(1)
            .pfc_paused_time(SimTime::from_micros(5))
            .as_nanos() > 0);
    }

    #[test]
    fn ecn_marks_when_queue_exceeds_threshold() {
        let ecn = EcnConfig {
            kmin_bytes: 1_000,
            kmax_bytes: 2_000,
            pmax: 1.0,
        };
        let config = SwitchConfig::default().with_ecn(ecn);
        let (_topo, routes, mut sw) = tor_under_test(config);
        let mut events = EventQueue::new();
        for seq in 0..20 {
            sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, seq), &routes, &mut events);
        }
        assert!(sw.counters().ecn_marked > 0);
    }

    #[test]
    fn int_telemetry_appended_on_dequeue() {
        let config = SwitchConfig::default().with_int();
        let (_topo, routes, mut sw) = tor_under_test(config);
        let mut events = EventQueue::new();
        sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, 0), &routes, &mut events);
        let mut found = false;
        while let Some((_, e)) = events.pop() {
            if let NetEvent::PacketArrive { packet, .. } = e {
                if packet.is_data() {
                    assert_eq!(packet.int.len(), 1);
                    assert_eq!(packet.int[0].link_gbps, 100.0);
                    assert_eq!(packet.int[0].tx_bytes, 1000);
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn flow_pause_frame_pauses_matching_queue() {
        let (_topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        // Queue a packet for host 1 then pause its VFID via a bloom frame
        // received from host 1 (the downstream of that egress).
        sw.handle_packet(SimTime::ZERO, 0, data_packet(7, 0, 1, 1), &routes, &mut events);
        // Drain the immediate transmission events for the first packet.
        while events.pop().is_some() {}
        let mut frame = crate::packet::PauseFrame::new(128, 4);
        frame.insert(7);
        sw.handle_packet(
            SimTime::ZERO,
            1,
            Packet::flow_pause(NodeId(1), sw.id, frame),
            &routes,
            &mut events,
        );
        // Add another packet of the same flow: it must stay queued because
        // the head of its queue matches the pause filter.
        sw.handle_packet(SimTime::ZERO, 0, data_packet(7, 0, 1, 2), &routes, &mut events);
        sw.handle_tx_complete(SimTime::from_nanos(80), 1, &mut events);
        let arrivals: usize = std::iter::from_fn(|| events.pop())
            .filter(|(_, e)| matches!(e, NetEvent::PacketArrive { packet, .. } if packet.is_data()))
            .count();
        assert_eq!(arrivals, 0, "the paused flow's packet must not be forwarded");
        assert_eq!(sw.port(1).queue_bytes(0), 1_000);
        assert!(sw.port(1).is_queue_paused(0));
    }

    #[test]
    fn link_down_flushes_queues_and_counts_blackholed() {
        let (_topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        // Queue several packets toward host 1: the first is serialized
        // immediately, the rest sit in the egress queue.
        for seq in 0..5 {
            sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, seq), &routes, &mut events);
        }
        let occupied_before = sw.buffer().occupancy();
        assert!(occupied_before > 0);
        let egress = 1; // host 1's port on ToR 0 in the tiny topology
        let blackholed = sw.handle_link_down(SimTime::from_nanos(100), egress, &mut events);
        assert_eq!(blackholed, 4, "all queued packets flushed");
        assert_eq!(sw.counters().blackholed, 4);
        assert_eq!(sw.buffer().occupancy(), 0, "buffer space released");
        assert!(!sw.port(egress).is_up());
        // While down, new arrivals for that egress queue but do not transmit.
        sw.handle_packet(SimTime::from_nanos(200), 0, data_packet(1, 0, 1, 9), &routes, &mut events);
        sw.handle_tx_complete(SimTime::from_nanos(200), egress, &mut events);
        while events.pop().is_some() {}
        assert!(sw.port(egress).total_queued_bytes() > 0);
        // Repair restarts transmission.
        sw.handle_link_up(SimTime::from_nanos(300), egress, &mut events);
        assert!(!events.is_empty(), "link up resumes the egress");
    }

    #[test]
    fn unroutable_packet_is_blackholed_not_forwarded() {
        let (topo, _routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        // Recompute routing with host 1's uplink dead: ToR 0 has no route.
        let dead_host = NodeId(1);
        let host_port = topo.port_towards(sw.id, dead_host).expect("adjacent");
        let sw_id = sw.id;
        let routes = RoutingTables::compute_filtered(&topo, |n, p| {
            !(n == sw_id && p == host_port) && !(n == dead_host && p == 0)
        });
        sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, 0), &routes, &mut events);
        assert_eq!(sw.counters().blackholed, 1);
        assert!(events.is_empty(), "nothing scheduled for a blackholed packet");
    }

    #[test]
    fn rate_degradation_slows_serialization() {
        let (_topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        sw.set_port_rate(1, 25.0); // 100 -> 25 Gbps toward host 1
        sw.handle_packet(SimTime::ZERO, 0, data_packet(1, 0, 1, 0), &routes, &mut events);
        let mut saw_tx = false;
        while let Some((t, e)) = events.pop() {
            if let NetEvent::TxComplete { .. } = e {
                // 1000 B at 25 Gbps = 320 ns (was 80 ns at 100 Gbps).
                assert_eq!(t.as_nanos(), 320);
                saw_tx = true;
            }
        }
        assert!(saw_tx);
    }

    #[test]
    fn control_packets_bypass_the_policy_queue() {
        let (_topo, routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        let ack = Packet::ack(FlowId(1), NodeId(0), NodeId(1), 3, false, false, Default::default());
        sw.handle_packet(SimTime::ZERO, 0, ack, &routes, &mut events);
        // ACK forwarded without touching the FIFO policy's flow residency.
        assert_eq!(sw.policy_stats().flow_assignments, 0);
        assert!(!events.is_empty());
    }

    #[test]
    fn pause_timer_chain_stops_when_policy_is_idle() {
        let (_topo, _routes, mut sw) = tor_under_test(SwitchConfig::default());
        let mut events = EventQueue::new();
        // FIFO policy never wants pause frames: a stray timer fires once and
        // is not rescheduled.
        sw.handle_pause_timer(SimTime::from_micros(1), 0, &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn tiny_pause_interval_matches_config() {
        let mut config = SwitchConfig::default();
        config.pause_frame_interval = SimDuration::from_micros(1);
        assert_eq!(config.pause_frame_interval.as_nanos(), 1000);
        // Link helper sanity: 128-byte bloom frame on 100 Gbps ≈ 10 ns.
        let l = Link::datacenter_default();
        assert_eq!(l.serialization(128).as_picos(), 10_240);
    }
}
