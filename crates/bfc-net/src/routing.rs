//! ECMP shortest-path routing.
//!
//! The evaluation topologies are multi-rooted trees, so routing is the usual
//! up/down scheme: every switch forwards toward the destination host along a
//! shortest path, and when several equal-cost next hops exist (ToR → spines)
//! the choice is made per flow by hashing, so all packets of a flow follow
//! one path and arrive in order.
//!
//! Routes are precomputed with a breadth-first search from every host, which
//! works for arbitrary topologies (including the cross-DC one), not just fat
//! trees. Under network dynamics (see [`crate::dynamics`]) the tables are
//! recomputed with [`RoutingTables::compute_filtered`], which skips dead
//! links; the ECMP choice uses **rendezvous (highest-random-weight) hashing**
//! so re-convergence is a *stable rehash*: flows whose previous next hop
//! survived keep it, and only flows that were mapped to a vanished candidate
//! move.

use std::collections::VecDeque;

use bfc_sim::rng::mix64;
use bfc_sim::SimDuration;

use crate::topology::Topology;
use crate::types::NodeId;

/// Precomputed routing state for a topology.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    /// `next_hops[node][dst_host_rank]` = local egress ports of `node` that
    /// lie on a shortest path to that host.
    next_hops: Vec<Vec<Vec<u32>>>,
    /// Maps a host NodeId to its dense rank used to index `next_hops`.
    host_rank: Vec<Option<usize>>,
    /// Hop count (number of links) from each node to each host.
    distance: Vec<Vec<u32>>,
    hosts: Vec<NodeId>,
}

impl RoutingTables {
    /// Computes routes for every (node, destination-host) pair, using every
    /// link of the topology.
    pub fn compute(topo: &Topology) -> Self {
        RoutingTables::compute_filtered(topo, |_, _| true)
    }

    /// Computes routes over the subgraph of links for which `link_up(node,
    /// local_port)` is true — the re-convergence primitive of the dynamics
    /// subsystem. Cables are full duplex, so `link_up` must be symmetric
    /// (both directed views of one cable agree); nodes that become
    /// unreachable get empty candidate lists and `u32::MAX` distances.
    pub fn compute_filtered(topo: &Topology, link_up: impl Fn(NodeId, u32) -> bool) -> Self {
        let n = topo.num_nodes();
        let hosts = topo.hosts();
        let mut host_rank = vec![None; n];
        for (rank, h) in hosts.iter().enumerate() {
            host_rank[h.index()] = Some(rank);
        }
        let mut next_hops = vec![vec![Vec::new(); hosts.len()]; n];
        let mut distance = vec![vec![u32::MAX; hosts.len()]; n];

        for (rank, &dst) in hosts.iter().enumerate() {
            // BFS outward from the destination host over the undirected graph
            // of live links.
            let mut dist = vec![u32::MAX; n];
            dist[dst.index()] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for (port, spec) in topo.ports(u).iter().enumerate() {
                    if !link_up(u, port as u32) {
                        continue;
                    }
                    let v = spec.peer;
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = dist[u.index()] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for node in 0..n {
                distance[node][rank] = dist[node];
                if node == dst.index() || dist[node] == u32::MAX {
                    continue;
                }
                let node_id = NodeId(node as u32);
                for (port, spec) in topo.ports(node_id).iter().enumerate() {
                    if !link_up(node_id, port as u32) {
                        continue;
                    }
                    if dist[spec.peer.index()] != u32::MAX
                        && dist[spec.peer.index()] + 1 == dist[node]
                    {
                        next_hops[node][rank].push(port as u32);
                    }
                }
            }
        }
        RoutingTables {
            next_hops,
            host_rank,
            distance,
            hosts,
        }
    }

    fn rank(&self, dst: NodeId) -> usize {
        self.host_rank[dst.index()].expect("destination must be a host")
    }

    /// All equal-cost egress ports of `node` toward host `dst`.
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[u32] {
        &self.next_hops[node.index()][self.rank(dst)]
    }

    /// The egress port `node` uses for a packet of the flow identified by
    /// `flow_hash`, destined to host `dst`, or `None` if `dst` is
    /// unreachable from `node` over the links the tables were computed with.
    ///
    /// ECMP picks among equal-cost ports by *rendezvous hashing*: each
    /// candidate port is scored by a hash of (node, flow, port) and the
    /// highest score wins. A flow's packets stay on one path, and when the
    /// candidate set changes (link failure / repair) only flows whose winning
    /// port vanished are remapped — everyone else keeps their path.
    pub fn try_egress_port(&self, node: NodeId, dst: NodeId, flow_hash: u64) -> Option<u32> {
        let candidates = self.candidates(node, dst);
        match candidates {
            [] => None,
            [only] => Some(*only),
            _ => {
                let base = mix64(flow_hash.wrapping_add((node.0 as u64) << 40));
                let mut best = candidates[0];
                let mut best_weight = 0u64;
                for &port in candidates {
                    let weight = mix64(base ^ (port as u64 + 1));
                    if weight > best_weight {
                        best_weight = weight;
                        best = port;
                    }
                }
                Some(best)
            }
        }
    }

    /// Like [`RoutingTables::try_egress_port`] but panics when `dst` is
    /// unreachable — the right call on a path that has already validated
    /// connectivity (initial setup, ideal-FCT computation).
    pub fn egress_port(&self, node: NodeId, dst: NodeId, flow_hash: u64) -> u32 {
        self.try_egress_port(node, dst, flow_hash)
            .unwrap_or_else(|| panic!("no route from {node} to {dst}; topology is disconnected"))
    }

    /// Number of links on the shortest path from `node` to host `dst`.
    pub fn hops(&self, node: NodeId, dst: NodeId) -> u32 {
        self.distance[node.index()][self.rank(dst)]
    }

    /// The full path (sequence of `(node, egress port)` pairs, excluding the
    /// destination) a flow takes from `src` to `dst`.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId, flow_hash: u64) -> Vec<(NodeId, u32)> {
        let mut path = Vec::new();
        let mut node = src;
        while node != dst {
            let port = self.egress_port(node, dst, flow_hash);
            path.push((node, port));
            node = topo.ports(node)[port as usize].peer;
            assert!(
                path.len() <= topo.num_nodes(),
                "routing loop detected between {src} and {dst}"
            );
        }
        path
    }

    /// The best-possible (unloaded) flow completion time for `size_bytes`
    /// sent from `src` to `dst`: per-hop store-and-forward of one MTU plus
    /// propagation, plus pipelined serialization of the remaining bytes at
    /// the bottleneck link. This is the denominator of the paper's "FCT
    /// slowdown" metric.
    pub fn ideal_fct(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        size_bytes: u64,
        mtu: u32,
        flow_hash: u64,
    ) -> SimDuration {
        let path = self.path(topo, src, dst, flow_hash);
        let first_packet = size_bytes.min(mtu as u64) as u32;
        let mut total = SimDuration::ZERO;
        let mut bottleneck_gbps = f64::MAX;
        for (node, port) in &path {
            let link = topo.ports(*node)[*port as usize].link;
            total += link.serialization(first_packet) + link.propagation;
            bottleneck_gbps = bottleneck_gbps.min(link.rate_gbps);
        }
        let remaining = size_bytes.saturating_sub(first_packet as u64);
        if remaining > 0 {
            total += SimDuration::for_bytes_at_gbps(remaining, bottleneck_gbps);
        }
        total
    }

    /// The base (unloaded) round-trip time between two hosts for an
    /// MTU-sized data packet and a 64-byte ACK.
    pub fn base_rtt(&self, topo: &Topology, a: NodeId, b: NodeId, mtu: u32) -> SimDuration {
        self.ideal_fct(topo, a, b, mtu as u64, mtu, 0)
            + self.ideal_fct(topo, b, a, 64, mtu, 0)
    }

    /// Hosts known to the routing table.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{cross_dc, fat_tree, CrossDcParams, FatTreeParams};

    #[test]
    fn routes_exist_between_all_host_pairs() {
        let topo = fat_tree(FatTreeParams::tiny());
        let routes = RoutingTables::compute(&topo);
        let hosts = topo.hosts();
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let path = routes.path(&topo, a, b, 12345);
                // host -> ToR -> (spine -> ToR)? -> host
                assert!(path.len() == 2 || path.len() == 4, "path len {}", path.len());
                let last = path.last().expect("non-empty path");
                assert_eq!(topo.ports(last.0)[last.1 as usize].peer, b);
            }
        }
    }

    #[test]
    fn same_rack_goes_through_tor_only() {
        let topo = fat_tree(FatTreeParams::t2());
        let routes = RoutingTables::compute(&topo);
        let hosts = topo.hosts();
        // Hosts 0 and 1 share ToR 0.
        assert_eq!(routes.hops(hosts[0], hosts[1]), 2);
        // Hosts in different racks traverse a spine.
        assert_eq!(routes.hops(hosts[0], hosts[63]), 4);
    }

    #[test]
    fn ecmp_spreads_flows_across_spines() {
        let topo = fat_tree(FatTreeParams::t2());
        let routes = RoutingTables::compute(&topo);
        let hosts = topo.hosts();
        let tor0 = topo.host_uplink(hosts[0]).peer;
        let dst = hosts[63];
        let candidates = routes.candidates(tor0, dst);
        assert_eq!(candidates.len(), 8, "all spines are equal-cost");
        let mut used = std::collections::HashSet::new();
        for h in 0..256u64 {
            used.insert(routes.egress_port(tor0, dst, h));
        }
        assert!(used.len() >= 6, "ECMP should spread across most spines");
    }

    #[test]
    fn flow_path_is_stable_for_a_flow() {
        let topo = fat_tree(FatTreeParams::t1());
        let routes = RoutingTables::compute(&topo);
        let hosts = topo.hosts();
        let p1 = routes.path(&topo, hosts[3], hosts[100], 777);
        let p2 = routes.path(&topo, hosts[3], hosts[100], 777);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ideal_fct_matches_hand_computation() {
        let topo = fat_tree(FatTreeParams::t2());
        let routes = RoutingTables::compute(&topo);
        let hosts = topo.hosts();
        // Cross-rack single MTU packet: 4 hops, each 80 ns serialization +
        // 1 us propagation = 4 * 1080 ns.
        let fct = routes.ideal_fct(&topo, hosts[0], hosts[63], 1000, 1000, 0);
        assert_eq!(fct.as_nanos(), 4 * 1080);
        // A 100 KB flow adds 99 KB at 100 Gbps = 7920 ns of pipelined bytes.
        let fct = routes.ideal_fct(&topo, hosts[0], hosts[63], 100_000, 1000, 0);
        assert_eq!(fct.as_nanos(), 4 * 1080 + 7_920);
    }

    #[test]
    fn base_rtt_matches_paper_order_of_magnitude() {
        // Paper: max end-to-end base RTT is 8 us on T1/T2 (100 Gbps, 1 us links).
        let topo = fat_tree(FatTreeParams::t2());
        let routes = RoutingTables::compute(&topo);
        let hosts = topo.hosts();
        let rtt = routes.base_rtt(&topo, hosts[0], hosts[63], 1000);
        let us = rtt.as_micros_f64();
        assert!((8.0..9.5).contains(&us), "base RTT was {us} us");
    }

    #[test]
    fn filtered_compute_avoids_down_links_and_flags_disconnection() {
        let topo = fat_tree(FatTreeParams::tiny());
        let hosts = topo.hosts();
        let tor0 = topo.host_uplink(hosts[0]).peer;
        let spine0 = topo.switches()[2];
        let dead = topo.port_towards(tor0, spine0).expect("adjacent");
        let routes = RoutingTables::compute_filtered(&topo, |n, p| !(n == tor0 && p == dead)
            && !(n == spine0 && topo.ports(spine0)[p as usize].peer == tor0));
        // Cross-rack traffic from rack 0 must avoid the dead uplink.
        for h in 0..64u64 {
            let egress = routes.try_egress_port(tor0, hosts[7], h).expect("still connected");
            assert_ne!(egress, dead);
        }
        // Taking down a host's only uplink disconnects it.
        let uplink_peer = topo.host_uplink(hosts[0]).peer;
        let host_port = topo.port_towards(uplink_peer, hosts[0]).expect("adjacent");
        let routes = RoutingTables::compute_filtered(&topo, |n, p| {
            !(n == hosts[0] && p == 0) && !(n == uplink_peer && p == host_port)
        });
        assert_eq!(routes.try_egress_port(hosts[4], hosts[0], 1), None);
        assert_eq!(routes.hops(hosts[4], hosts[0]), u32::MAX);
    }

    #[test]
    fn rendezvous_rehash_is_stable_for_surviving_candidates() {
        let topo = fat_tree(FatTreeParams::t2());
        let hosts = topo.hosts();
        let tor0 = topo.host_uplink(hosts[0]).peer;
        let dst = hosts[63];
        let full = RoutingTables::compute(&topo);
        // Kill tor0's first spine uplink and recompute.
        let dead = full.candidates(tor0, dst)[0];
        let dead_peer = topo.ports(tor0)[dead as usize].peer;
        let back = topo.port_towards(dead_peer, tor0).expect("adjacent");
        let pruned = RoutingTables::compute_filtered(&topo, |n, p| {
            !(n == tor0 && p == dead) && !(n == dead_peer && p == back)
        });
        assert_eq!(pruned.candidates(tor0, dst).len(), full.candidates(tor0, dst).len() - 1);
        let mut moved = 0;
        for h in 0..512u64 {
            let before = full.egress_port(tor0, dst, h);
            let after = pruned.egress_port(tor0, dst, h);
            if before == dead {
                moved += 1;
                assert_ne!(after, dead);
            } else {
                assert_eq!(before, after, "flow {h} moved although its port survived");
            }
        }
        assert!(moved > 0, "some flows must have used the dead port");
    }

    #[test]
    fn cross_dc_paths_traverse_gateways() {
        let c = cross_dc(CrossDcParams::paper_default());
        let routes = RoutingTables::compute(&c.topology);
        let src = c.dc0_hosts[0];
        let dst = c.dc1_hosts[0];
        let path = routes.path(&c.topology, src, dst, 5);
        let nodes: Vec<NodeId> = path.iter().map(|(n, _)| *n).collect();
        assert!(nodes.contains(&c.gateway0));
        // host, tor, spine, gw0, gw1, spine, tor -> host = 7 forwarding hops.
        assert_eq!(path.len(), 7);
    }
}
