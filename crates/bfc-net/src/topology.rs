//! Topology description and builders.
//!
//! A [`Topology`] is a set of nodes (hosts and switches) connected by
//! full-duplex cables. The builders reproduce the paper's evaluation
//! topologies:
//!
//! * **T1** — 128 hosts, 8 ToR switches (16 hosts each), 8 spines, 2:1
//!   oversubscription, 100 Gbps links with 1 µs propagation delay.
//! * **T2** — 64 hosts, 4 ToR switches, 8 spines, same links.
//! * **Cross-DC** — two T2-style data centers joined by gateway switches over
//!   a long-haul 100 Gbps link with 200 µs one-way delay (§4.2).

use bfc_sim::SimDuration;

use crate::link::Link;
use crate::types::NodeId;

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with a single NIC port.
    Host,
    /// A switch.
    Switch,
}

/// One direction of a cable as seen from a node: the local port's link and
/// the peer it reaches.
#[derive(Debug, Clone, Copy)]
pub struct PortSpec {
    /// Node on the other end.
    pub peer: NodeId,
    /// The peer's local port index for the same cable.
    pub peer_port: u32,
    /// Link characteristics in the egress direction of this port.
    pub link: Link,
}

/// A complete topology.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<PortSpec>>,
    labels: Vec<String>,
}

impl Topology {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// True if the node is a host.
    pub fn is_host(&self, node: NodeId) -> bool {
        self.kind(node) == NodeKind::Host
    }

    /// All host node IDs, in creation order.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&i| self.kinds[i] == NodeKind::Host)
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// All switch node IDs, in creation order.
    pub fn switches(&self) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&i| self.kinds[i] == NodeKind::Switch)
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// The ports of a node.
    pub fn ports(&self, node: NodeId) -> &[PortSpec] {
        &self.ports[node.index()]
    }

    /// Human-readable label of a node (e.g. `"tor3"`, `"host17"`).
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// The single uplink port of a host.
    pub fn host_uplink(&self, host: NodeId) -> &PortSpec {
        debug_assert!(self.is_host(host), "host_uplink called on a switch");
        &self.ports[host.index()][0]
    }

    /// Looks up which local port of `node` faces `peer`, if they are adjacent.
    pub fn port_towards(&self, node: NodeId, peer: NodeId) -> Option<u32> {
        self.ports[node.index()]
            .iter()
            .position(|p| p.peer == peer)
            .map(|i| i as u32)
    }
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<PortSpec>>,
    labels: Vec<String>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    fn add_node(&mut self, kind: NodeKind, label: String) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.ports.push(Vec::new());
        self.labels.push(label);
        id
    }

    /// Adds a host.
    pub fn add_host(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, label.into())
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, label.into())
    }

    /// Connects two nodes with a symmetric full-duplex cable.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        let port_a = self.ports[a.index()].len() as u32;
        let port_b = self.ports[b.index()].len() as u32;
        self.ports[a.index()].push(PortSpec {
            peer: b,
            peer_port: port_b,
            link,
        });
        self.ports[b.index()].push(PortSpec {
            peer: a,
            peer_port: port_a,
            link,
        });
    }

    /// Finishes the topology.
    pub fn build(self) -> Topology {
        Topology {
            kinds: self.kinds,
            ports: self.ports,
            labels: self.labels,
        }
    }
}

/// Parameters of a two-level (leaf/spine) fat tree.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeParams {
    /// Number of top-of-rack switches.
    pub num_tors: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Number of spine switches (each connects to every ToR).
    pub num_spines: usize,
    /// Host ↔ ToR links.
    pub host_link: Link,
    /// ToR ↔ spine links.
    pub fabric_link: Link,
}

impl FatTreeParams {
    /// The paper's T1 topology: 128 hosts, 8 ToRs, 8 spines, 100 Gbps, 1 µs.
    pub fn t1() -> Self {
        FatTreeParams {
            num_tors: 8,
            hosts_per_tor: 16,
            num_spines: 8,
            host_link: Link::datacenter_default(),
            fabric_link: Link::datacenter_default(),
        }
    }

    /// The paper's T2 topology: 64 hosts, 4 ToRs, 8 spines, 100 Gbps, 1 µs.
    pub fn t2() -> Self {
        FatTreeParams {
            num_tors: 4,
            hosts_per_tor: 16,
            num_spines: 8,
            host_link: Link::datacenter_default(),
            fabric_link: Link::datacenter_default(),
        }
    }

    /// Same shape as T2 but with every link scaled to `gbps` (used by the
    /// Fig. 2 link-speed sweep and the cross-DC experiment's 10 Gbps fabric).
    pub fn t2_at_rate(gbps: f64) -> Self {
        let link = Link::new(gbps, SimDuration::from_micros(1));
        FatTreeParams {
            num_tors: 4,
            hosts_per_tor: 16,
            num_spines: 8,
            host_link: link,
            fabric_link: link,
        }
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_tors * self.hosts_per_tor
    }

    /// A smaller topology for tests and fast benchmarks, preserving the
    /// 2:1 oversubscription of the paper's topologies.
    pub fn tiny() -> Self {
        FatTreeParams {
            num_tors: 2,
            hosts_per_tor: 4,
            num_spines: 2,
            host_link: Link::datacenter_default(),
            fabric_link: Link::datacenter_default(),
        }
    }
}

/// Builds a two-level fat tree. Hosts are created first (so host `i` has
/// `NodeId(i)`), then ToRs, then spines.
pub fn fat_tree(params: FatTreeParams) -> Topology {
    let mut b = TopologyBuilder::new();
    let hosts: Vec<NodeId> = (0..params.num_hosts())
        .map(|i| b.add_host(format!("host{i}")))
        .collect();
    let tors: Vec<NodeId> = (0..params.num_tors)
        .map(|i| b.add_switch(format!("tor{i}")))
        .collect();
    let spines: Vec<NodeId> = (0..params.num_spines)
        .map(|i| b.add_switch(format!("spine{i}")))
        .collect();
    for (h, &host) in hosts.iter().enumerate() {
        let tor = tors[h / params.hosts_per_tor];
        b.connect(host, tor, params.host_link);
    }
    for &tor in &tors {
        for &spine in &spines {
            b.connect(tor, spine, params.fabric_link);
        }
    }
    b.build()
}

/// Parameters of the cross-data-center topology (§4.2 "Cross datacenter
/// environments").
#[derive(Debug, Clone, Copy)]
pub struct CrossDcParams {
    /// Parameters of each data center's internal fat tree.
    pub dc: FatTreeParams,
    /// The long-haul link between the two gateway switches.
    pub inter_dc_link: Link,
}

impl CrossDcParams {
    /// The paper's setup: two T2-shaped DCs with 10 Gbps internal links and a
    /// 100 Gbps gateway-to-gateway link with 200 µs one-way delay.
    pub fn paper_default() -> Self {
        CrossDcParams {
            dc: FatTreeParams::t2_at_rate(10.0),
            inter_dc_link: Link::new(100.0, SimDuration::from_micros(200)),
        }
    }
}

/// The cross-DC topology plus bookkeeping about which hosts belong to which
/// data center.
#[derive(Debug, Clone)]
pub struct CrossDcTopology {
    /// The built topology.
    pub topology: Topology,
    /// Hosts in data center 0.
    pub dc0_hosts: Vec<NodeId>,
    /// Hosts in data center 1.
    pub dc1_hosts: Vec<NodeId>,
    /// Gateway switch of data center 0.
    pub gateway0: NodeId,
    /// Gateway switch of data center 1.
    pub gateway1: NodeId,
}

/// Builds two fat-tree data centers joined by a gateway switch each. Every
/// spine of a data center connects to its gateway with a fabric link; the two
/// gateways are joined by the long-haul link.
pub fn cross_dc(params: CrossDcParams) -> CrossDcTopology {
    let mut b = TopologyBuilder::new();
    let mut dc_hosts = Vec::new();
    let mut dc_spines = Vec::new();
    for dc in 0..2 {
        let hosts: Vec<NodeId> = (0..params.dc.num_hosts())
            .map(|i| b.add_host(format!("dc{dc}-host{i}")))
            .collect();
        let tors: Vec<NodeId> = (0..params.dc.num_tors)
            .map(|i| b.add_switch(format!("dc{dc}-tor{i}")))
            .collect();
        let spines: Vec<NodeId> = (0..params.dc.num_spines)
            .map(|i| b.add_switch(format!("dc{dc}-spine{i}")))
            .collect();
        for (h, &host) in hosts.iter().enumerate() {
            b.connect(host, tors[h / params.dc.hosts_per_tor], params.dc.host_link);
        }
        for &tor in &tors {
            for &spine in &spines {
                b.connect(tor, spine, params.dc.fabric_link);
            }
        }
        dc_hosts.push(hosts);
        dc_spines.push(spines);
    }
    let gateway0 = b.add_switch("gateway0");
    let gateway1 = b.add_switch("gateway1");
    for &spine in &dc_spines[0] {
        b.connect(spine, gateway0, params.dc.fabric_link);
    }
    for &spine in &dc_spines[1] {
        b.connect(spine, gateway1, params.dc.fabric_link);
    }
    b.connect(gateway0, gateway1, params.inter_dc_link);
    CrossDcTopology {
        topology: b.build(),
        dc1_hosts: dc_hosts.pop().expect("two DCs were built"),
        dc0_hosts: dc_hosts.pop().expect("two DCs were built"),
        gateway0,
        gateway1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_shape_matches_paper() {
        let p = FatTreeParams::t1();
        let t = fat_tree(p);
        assert_eq!(t.hosts().len(), 128);
        assert_eq!(t.switches().len(), 16);
        // Each ToR has 16 host ports + 8 spine ports.
        let tor = t.switches()[0];
        assert_eq!(t.ports(tor).len(), 24);
        // Each spine has 8 ToR ports.
        let spine = t.switches()[8];
        assert_eq!(t.ports(spine).len(), 8);
        // Hosts have exactly one port.
        assert_eq!(t.ports(t.hosts()[0]).len(), 1);
        assert!(t.label(tor).starts_with("tor"));
    }

    #[test]
    fn t2_shape_matches_paper() {
        let t = fat_tree(FatTreeParams::t2());
        assert_eq!(t.hosts().len(), 64);
        assert_eq!(t.switches().len(), 12);
    }

    #[test]
    fn connectivity_is_symmetric() {
        let t = fat_tree(FatTreeParams::tiny());
        for node in 0..t.num_nodes() {
            let node = NodeId(node as u32);
            for (i, spec) in t.ports(node).iter().enumerate() {
                let back = &t.ports(spec.peer)[spec.peer_port as usize];
                assert_eq!(back.peer, node);
                assert_eq!(back.peer_port as usize, i);
            }
        }
    }

    #[test]
    fn host_ids_are_dense_and_first() {
        let t = fat_tree(FatTreeParams::tiny());
        let hosts = t.hosts();
        for (i, h) in hosts.iter().enumerate() {
            assert_eq!(h.index(), i);
            assert!(t.is_host(*h));
        }
    }

    #[test]
    fn port_towards_finds_adjacency() {
        let t = fat_tree(FatTreeParams::tiny());
        let host = t.hosts()[0];
        let tor = t.host_uplink(host).peer;
        assert!(t.port_towards(tor, host).is_some());
        assert!(t.port_towards(host, tor).is_some());
        let other_host = t.hosts()[7];
        assert_eq!(t.port_towards(host, other_host), None);
    }

    #[test]
    fn cross_dc_shape() {
        let c = cross_dc(CrossDcParams::paper_default());
        assert_eq!(c.dc0_hosts.len(), 64);
        assert_eq!(c.dc1_hosts.len(), 64);
        // Gateways: 8 spine ports + 1 long-haul port.
        assert_eq!(c.topology.ports(c.gateway0).len(), 9);
        assert_eq!(c.topology.ports(c.gateway1).len(), 9);
        let gw_link = c
            .topology
            .ports(c.gateway0)
            .last()
            .expect("gateway has ports");
        assert_eq!(gw_link.peer, c.gateway1);
        assert_eq!(gw_link.link.propagation, SimDuration::from_micros(200));
    }

    #[test]
    fn t2_at_rate_scales_links() {
        let t = fat_tree(FatTreeParams::t2_at_rate(10.0));
        let host = t.hosts()[0];
        assert_eq!(t.host_uplink(host).link.rate_gbps, 10.0);
    }
}
