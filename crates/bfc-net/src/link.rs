//! Point-to-point link model.
//!
//! A [`Link`] describes one direction of a full-duplex cable: a capacity in
//! Gbps and a propagation delay. Serialization (store-and-forward) is modelled
//! by the egress port that owns the link: a packet of `n` bytes occupies the
//! transmitter for `n * 8 / rate` and arrives at the peer one propagation
//! delay after serialization completes.

use bfc_sim::{SimDuration, SimTime};

/// One direction of a cable between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Capacity in gigabits per second.
    pub rate_gbps: f64,
    /// Propagation delay.
    pub propagation: SimDuration,
}

impl Link {
    /// Creates a link with the given rate and propagation delay.
    pub fn new(rate_gbps: f64, propagation: SimDuration) -> Self {
        assert!(rate_gbps > 0.0, "link rate must be positive");
        Link {
            rate_gbps,
            propagation,
        }
    }

    /// The paper's default intra-data-center link: 100 Gbps, 1 µs propagation.
    pub fn datacenter_default() -> Self {
        Link::new(100.0, SimDuration::from_micros(1))
    }

    /// Time to serialize `bytes` bytes onto this link.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::for_bytes_at_gbps(bytes as u64, self.rate_gbps)
    }

    /// Time from the start of transmission until the last bit arrives at the
    /// peer (serialization + propagation).
    pub fn delivery_delay(&self, bytes: u32) -> SimDuration {
        self.serialization(bytes) + self.propagation
    }

    /// The time at which a packet started now would finish arriving.
    pub fn arrival_time(&self, now: SimTime, bytes: u32) -> SimTime {
        now + self.delivery_delay(bytes)
    }

    /// Bytes needed to keep this link busy for `dur` (the link's
    /// bandwidth-delay product when `dur` is an RTT).
    pub fn bytes_in_flight(&self, dur: SimDuration) -> u64 {
        (self.rate_gbps * dur.as_secs_f64() * 1e9 / 8.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_matches_rate() {
        let l = Link::datacenter_default();
        assert_eq!(l.serialization(1000).as_nanos(), 80);
        assert_eq!(l.delivery_delay(1000).as_nanos(), 1080);
    }

    #[test]
    fn bdp_computation() {
        let l = Link::new(100.0, SimDuration::from_micros(1));
        // 100 Gbps over 8 us RTT = 100e9 * 8e-6 / 8 = 100 KB.
        assert_eq!(l.bytes_in_flight(SimDuration::from_micros(8)), 100_000);
    }

    #[test]
    fn arrival_time_adds_delay() {
        let l = Link::new(10.0, SimDuration::from_nanos(500));
        let t = l.arrival_time(SimTime::from_nanos(100), 125);
        // 125 bytes at 10 Gbps = 100 ns serialization.
        assert_eq!(t.as_nanos(), 100 + 100 + 500);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_rejected() {
        let _ = Link::new(0.0, SimDuration::ZERO);
    }
}
