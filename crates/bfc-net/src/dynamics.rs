//! Network dynamics: scheduled link faults, repairs and rate changes.
//!
//! A static topology never exercises the regime backpressure schemes are
//! built for — reacting within a hop RTT while the fabric is in flux. This
//! module is the substrate for that scenario family:
//!
//! * [`LinkAction`] — one mutation of a cable: take it down, bring it back,
//!   or change its rate (degradation / repair).
//! * [`FaultEvent`] / [`FaultSchedule`] — actions pinned to simulated
//!   timestamps, sorted and validated against a topology before a run.
//! * [`LinkStateMap`] — the live per-port up/down overlay the driver
//!   consults on every packet delivery and that routing recomputation
//!   filters dead links through (rates live on the ports themselves).
//!
//! Semantics are defined at three points, all deterministic:
//!
//! 1. **In-flight packets** are dropped ("blackholed") if the cable they are
//!    crossing is down *at their delivery instant* — the driver checks the
//!    [`LinkStateMap`] when the `PacketArrive` event fires.
//! 2. **Queued packets** on a dead egress are flushed immediately (buffer
//!    space released, data packets counted as blackholed); Go-Back-N at the
//!    sender recovers them end to end.
//! 3. **Routing** re-converges by recomputing [`crate::RoutingTables`] over
//!    the surviving links, with a rendezvous-hash ECMP choice so flows whose
//!    old next hop survived keep their path (stable rehash).

use std::fmt;

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::SimTime;

use crate::topology::Topology;
use crate::types::NodeId;

/// One mutation of a full-duplex cable, identified by its two endpoints.
/// Both directions of the cable are affected symmetrically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAction {
    /// Take the cable down: queued packets on both egresses are flushed and
    /// in-flight packets are blackholed at delivery time.
    Down {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Bring the cable back up at its current configured rate.
    Up {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Change the cable's rate in both directions (degrade or restore).
    SetRate {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// New rate in Gbps (must be positive).
        gbps: f64,
    },
}

impl LinkAction {
    /// The two endpoints of the affected cable.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            LinkAction::Down { a, b } | LinkAction::Up { a, b } | LinkAction::SetRate { a, b, .. } => {
                (a, b)
            }
        }
    }
}

/// A [`LinkAction`] pinned to a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the action takes effect.
    pub at: SimTime,
    /// What happens to the link.
    pub action: LinkAction,
}

/// Why a schedule cannot be applied to a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicsError {
    /// The two endpoints of an action are not connected by a cable.
    NotAdjacent {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A node id does not exist in the topology.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// A `SetRate` action carried a non-positive rate.
    BadRate {
        /// The offending rate.
        gbps: f64,
    },
}

impl fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicsError::NotAdjacent { a, b } => {
                write!(f, "no cable between {a} and {b}")
            }
            DynamicsError::UnknownNode { node } => write!(f, "{node} is not in the topology"),
            DynamicsError::BadRate { gbps } => write!(f, "link rate must be positive, got {gbps}"),
        }
    }
}

impl std::error::Error for DynamicsError {}

/// A time-sorted list of link events — the "what goes wrong when" of one
/// experiment. An empty schedule (the default) is bit-identical to a run of
/// this build with dynamics absent entirely: the link-state checks
/// short-circuit and nothing else changes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule, sorting the events by time (stable, so same-instant
    /// events keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Checks every event against the topology: endpoints must exist and be
    /// adjacent, and rates must be positive.
    pub fn validate(&self, topo: &Topology) -> Result<(), DynamicsError> {
        for event in &self.events {
            let (a, b) = event.action.endpoints();
            for node in [a, b] {
                if node.index() >= topo.num_nodes() {
                    return Err(DynamicsError::UnknownNode { node });
                }
            }
            if topo.port_towards(a, b).is_none() || topo.port_towards(b, a).is_none() {
                return Err(DynamicsError::NotAdjacent { a, b });
            }
            if let LinkAction::SetRate { gbps, .. } = event.action {
                if !(gbps > 0.0) {
                    return Err(DynamicsError::BadRate { gbps });
                }
            }
        }
        Ok(())
    }
}

/// One directed endpoint of a cable affected by an applied action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The node whose local egress changed.
    pub node: NodeId,
    /// The local port index at that node.
    pub port: u32,
}

/// The live up/down overlay of one running experiment, per directed port.
/// Built all-up from a topology; mutated only through
/// [`LinkStateMap::apply`]. Current link *rates* are not duplicated here —
/// they live where the simulation reads them (the switch `Port`s and host
/// uplinks), which `apply` callers update via the returned endpoints.
#[derive(Debug, Clone)]
pub struct LinkStateMap {
    up: Vec<Vec<bool>>,
    down_links: usize,
}

impl LinkStateMap {
    /// All links up.
    pub fn new(topo: &Topology) -> Self {
        let up = (0..topo.num_nodes())
            .map(|node| vec![true; topo.ports(NodeId(node as u32)).len()])
            .collect();
        LinkStateMap { up, down_links: 0 }
    }

    /// Whether the cable at (`node`, local `port`) is currently up.
    pub fn is_up(&self, node: NodeId, port: u32) -> bool {
        self.up[node.index()][port as usize]
    }

    /// True if no link is currently down.
    pub fn all_up(&self) -> bool {
        self.down_links == 0
    }

    /// Number of cables currently down.
    pub fn down_links(&self) -> usize {
        self.down_links
    }

    /// Applies one action, returning the two directed endpoints whose state
    /// changed so the caller can update the matching switch/host ports.
    /// Fails (without mutating) if the endpoints are not adjacent in `topo`
    /// or a rate is invalid.
    pub fn apply(
        &mut self,
        topo: &Topology,
        action: &LinkAction,
    ) -> Result<[Endpoint; 2], DynamicsError> {
        let (a, b) = action.endpoints();
        for node in [a, b] {
            if node.index() >= topo.num_nodes() {
                return Err(DynamicsError::UnknownNode { node });
            }
        }
        let port_a = topo
            .port_towards(a, b)
            .ok_or(DynamicsError::NotAdjacent { a, b })?;
        let port_b = topo
            .port_towards(b, a)
            .ok_or(DynamicsError::NotAdjacent { a, b })?;
        match *action {
            LinkAction::Down { .. } => {
                let was_up = self.up[a.index()][port_a as usize];
                self.up[a.index()][port_a as usize] = false;
                self.up[b.index()][port_b as usize] = false;
                if was_up {
                    self.down_links += 1;
                }
            }
            LinkAction::Up { .. } => {
                let was_up = self.up[a.index()][port_a as usize];
                self.up[a.index()][port_a as usize] = true;
                self.up[b.index()][port_b as usize] = true;
                if !was_up {
                    self.down_links -= 1;
                }
            }
            LinkAction::SetRate { gbps, .. } => {
                // Rates are owned by the ports themselves; the map only
                // validates the action and names the endpoints to update.
                if !(gbps > 0.0) {
                    return Err(DynamicsError::BadRate { gbps });
                }
            }
        }
        Ok([
            Endpoint { node: a, port: port_a },
            Endpoint { node: b, port: port_b },
        ])
    }

    /// Serializes the up/down overlay for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.up.len());
        for ports in &self.up {
            w.put_usize(ports.len());
            for &up in ports {
                w.put_bool(up);
            }
        }
        w.put_usize(self.down_links);
    }

    /// Restores state captured by [`LinkStateMap::save_state`] into this map,
    /// which must have been built from the same topology.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let nodes = r.get_usize()?;
        if nodes != self.up.len() {
            return Err(SnapError::Corrupt("link-state node count mismatch"));
        }
        for ports in &mut self.up {
            let n = r.get_usize()?;
            if n != ports.len() {
                return Err(SnapError::Corrupt("link-state port count mismatch"));
            }
            for up in ports.iter_mut() {
                *up = r.get_bool()?;
            }
        }
        self.down_links = r.get_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{fat_tree, FatTreeParams};
    use bfc_sim::SimTime;

    fn tiny() -> Topology {
        fat_tree(FatTreeParams::tiny())
    }

    #[test]
    fn schedule_sorts_by_time_stably() {
        let topo = tiny();
        let tor = topo.switches()[0];
        let spine = topo.switches()[2];
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at: SimTime::from_micros(20),
                action: LinkAction::Up { a: tor, b: spine },
            },
            FaultEvent {
                at: SimTime::from_micros(5),
                action: LinkAction::Down { a: tor, b: spine },
            },
        ]);
        assert_eq!(s.len(), 2);
        assert!(matches!(s.events()[0].action, LinkAction::Down { .. }));
        assert!(s.validate(&topo).is_ok());
    }

    #[test]
    fn validate_rejects_non_adjacent_and_unknown_nodes() {
        let topo = tiny();
        let hosts = topo.hosts();
        let s = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::ZERO,
            action: LinkAction::Down {
                a: hosts[0],
                b: hosts[1],
            },
        }]);
        assert!(matches!(
            s.validate(&topo),
            Err(DynamicsError::NotAdjacent { .. })
        ));
        let s = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::ZERO,
            action: LinkAction::Up {
                a: hosts[0],
                b: NodeId(999),
            },
        }]);
        assert!(matches!(
            s.validate(&topo),
            Err(DynamicsError::UnknownNode { node: NodeId(999) })
        ));
        let tor = topo.switches()[0];
        let s = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::ZERO,
            action: LinkAction::SetRate {
                a: hosts[0],
                b: tor,
                gbps: 0.0,
            },
        }]);
        assert!(matches!(s.validate(&topo), Err(DynamicsError::BadRate { .. })));
    }

    #[test]
    fn apply_mutates_both_directions() {
        let topo = tiny();
        let mut state = LinkStateMap::new(&topo);
        assert!(state.all_up());
        let tor = topo.switches()[0];
        let spine = topo.switches()[2];
        let ends = state
            .apply(&topo, &LinkAction::Down { a: tor, b: spine })
            .expect("adjacent");
        assert_eq!(ends[0].node, tor);
        assert_eq!(ends[1].node, spine);
        assert!(!state.is_up(tor, ends[0].port));
        assert!(!state.is_up(spine, ends[1].port));
        assert_eq!(state.down_links(), 1);
        // Idempotent down, then repair.
        state
            .apply(&topo, &LinkAction::Down { a: spine, b: tor })
            .expect("adjacent");
        assert_eq!(state.down_links(), 1);
        state
            .apply(&topo, &LinkAction::Up { a: tor, b: spine })
            .expect("adjacent");
        assert!(state.all_up());
    }

    #[test]
    fn apply_set_rate_names_both_directions_without_downing() {
        let topo = tiny();
        let mut state = LinkStateMap::new(&topo);
        let host = topo.hosts()[0];
        let tor = topo.host_uplink(host).peer;
        let ends = state
            .apply(
                &topo,
                &LinkAction::SetRate {
                    a: host,
                    b: tor,
                    gbps: 25.0,
                },
            )
            .expect("adjacent");
        assert_eq!(ends[0].node, host);
        assert_eq!(ends[1].node, tor);
        assert!(state.all_up(), "rate changes do not take the link down");
        assert!(matches!(
            state.apply(&topo, &LinkAction::SetRate { a: host, b: tor, gbps: -1.0 }),
            Err(DynamicsError::BadRate { .. })
        ));
    }
}
