//! Shared-buffer memory model.
//!
//! Modern data-center switches share one packet buffer across all ports
//! (the paper uses 12 MB, matching Broadcom Tomahawk3's buffer-to-capacity
//! ratio). This module accounts for total occupancy plus per-ingress-port
//! occupancy — the latter drives the dynamic PFC threshold: an ingress that
//! holds more than a configurable fraction of the *free* buffer pauses its
//! upstream.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

use crate::config::PfcConfig;

/// Shared packet buffer of one switch.
#[derive(Debug)]
pub struct SharedBuffer {
    capacity: u64,
    occupancy: u64,
    per_ingress: Vec<u64>,
    /// Ingress ports that currently have an outstanding PFC pause toward
    /// their upstream.
    pfc_paused_upstream: Vec<bool>,
    peak_occupancy: u64,
    drops: u64,
    dropped_bytes: u64,
    /// Cached PFC pause threshold, keyed by the occupancy it was computed
    /// at. The dynamic threshold is a float function of the *free* buffer,
    /// so it only changes when total occupancy does — one "region" is a
    /// maximal run of evaluations at constant occupancy. Within a region
    /// (every ingress of a link-down flush, repeated checks between buffer
    /// movements) the float math runs once instead of per call; the cached
    /// value is byte-exact, so PFC decisions are unchanged.
    pfc_cache: Option<(u64, u64)>,
}

impl SharedBuffer {
    /// Creates a buffer with `capacity` bytes shared across `num_ports`
    /// ingress ports. Use `u64::MAX` for the infinite-buffer baselines.
    pub fn new(capacity: u64, num_ports: usize) -> Self {
        SharedBuffer {
            capacity,
            occupancy: 0,
            per_ingress: vec![0; num_ports],
            pfc_paused_upstream: vec![false; num_ports],
            peak_occupancy: 0,
            drops: 0,
            dropped_bytes: 0,
            pfc_cache: None,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Highest occupancy ever observed.
    pub fn peak_occupancy(&self) -> u64 {
        self.peak_occupancy
    }

    /// Bytes currently stored that arrived via `ingress`.
    pub fn ingress_occupancy(&self, ingress: u32) -> u64 {
        self.per_ingress[ingress as usize]
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.occupancy)
    }

    /// Number of packets dropped because the buffer was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Bytes dropped because the buffer was full.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Tries to admit a packet of `bytes` arriving on `ingress`. Returns
    /// false (and counts a drop) if the packet does not fit.
    pub fn admit(&mut self, bytes: u32, ingress: u32) -> bool {
        let bytes = bytes as u64;
        if self.occupancy.saturating_add(bytes) > self.capacity {
            self.drops += 1;
            self.dropped_bytes += bytes;
            return false;
        }
        self.occupancy += bytes;
        self.per_ingress[ingress as usize] += bytes;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
        true
    }

    /// Releases a packet of `bytes` that arrived on `ingress` (called when
    /// the packet starts transmission out of the switch).
    pub fn release(&mut self, bytes: u32, ingress: u32) {
        let bytes = bytes as u64;
        debug_assert!(self.occupancy >= bytes, "buffer release underflow");
        debug_assert!(
            self.per_ingress[ingress as usize] >= bytes,
            "ingress release underflow"
        );
        self.occupancy -= bytes;
        self.per_ingress[ingress as usize] -= bytes;
    }

    /// PFC decision for `ingress` after an arrival or departure. Returns
    /// `Some(true)` if a pause frame must be sent upstream now, `Some(false)`
    /// if a resume frame must be sent, and `None` if nothing changes.
    pub fn pfc_transition(&mut self, ingress: u32, pfc: &PfcConfig) -> Option<bool> {
        if !pfc.enabled {
            return None;
        }
        let idx = ingress as usize;
        let threshold = self.pfc_threshold(pfc);
        let occ = self.per_ingress[idx];
        if !self.pfc_paused_upstream[idx] && occ > threshold {
            self.pfc_paused_upstream[idx] = true;
            Some(true)
        } else if self.pfc_paused_upstream[idx]
            && (occ as f64) < pfc.resume_fraction * threshold as f64
        {
            self.pfc_paused_upstream[idx] = false;
            Some(false)
        } else {
            None
        }
    }

    /// The dynamic pause threshold for the current occupancy, recomputed
    /// only when the occupancy has moved out of the cached region (see
    /// `pfc_cache`). One switch always evaluates one `PfcConfig`, so the
    /// cache is keyed on occupancy alone.
    #[inline]
    fn pfc_threshold(&mut self, pfc: &PfcConfig) -> u64 {
        if let Some((occ, threshold)) = self.pfc_cache {
            if occ == self.occupancy {
                debug_assert_eq!(threshold, pfc.pause_threshold(self.free()));
                return threshold;
            }
        }
        let threshold = pfc.pause_threshold(self.free());
        self.pfc_cache = Some((self.occupancy, threshold));
        threshold
    }

    /// Whether this switch currently has a PFC pause outstanding toward the
    /// upstream of `ingress`.
    pub fn upstream_paused(&self, ingress: u32) -> bool {
        self.pfc_paused_upstream[ingress as usize]
    }

    /// Serializes the buffer's mutable state for snapshot/restore. The
    /// threshold cache is pure memoization and is not captured.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.occupancy);
        w.put_usize(self.per_ingress.len());
        for &occ in &self.per_ingress {
            w.put_u64(occ);
        }
        for &paused in &self.pfc_paused_upstream {
            w.put_bool(paused);
        }
        w.put_u64(self.peak_occupancy);
        w.put_u64(self.drops);
        w.put_u64(self.dropped_bytes);
    }

    /// Restores state captured by [`SharedBuffer::save_state`] into this
    /// buffer (which must have been built with the same port count).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.occupancy = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.per_ingress.len() {
            return Err(SnapError::Corrupt("shared-buffer port count mismatch"));
        }
        for occ in &mut self.per_ingress {
            *occ = r.get_u64()?;
        }
        for paused in &mut self.pfc_paused_upstream {
            *paused = r.get_bool()?;
        }
        self.peak_occupancy = r.get_u64()?;
        self.drops = r.get_u64()?;
        self.dropped_bytes = r.get_u64()?;
        self.pfc_cache = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_and_release_track_occupancy() {
        let mut b = SharedBuffer::new(10_000, 4);
        assert!(b.admit(4_000, 0));
        assert!(b.admit(4_000, 1));
        assert_eq!(b.occupancy(), 8_000);
        assert_eq!(b.ingress_occupancy(0), 4_000);
        assert_eq!(b.free(), 2_000);
        assert!(!b.admit(4_000, 2), "over-capacity admit must fail");
        assert_eq!(b.drops(), 1);
        assert_eq!(b.dropped_bytes(), 4_000);
        b.release(4_000, 0);
        assert_eq!(b.occupancy(), 4_000);
        assert_eq!(b.ingress_occupancy(0), 0);
        assert_eq!(b.peak_occupancy(), 8_000);
    }

    #[test]
    fn infinite_buffer_never_drops() {
        let mut b = SharedBuffer::new(u64::MAX, 1);
        for _ in 0..1_000 {
            assert!(b.admit(1_000_000, 0));
        }
        assert_eq!(b.drops(), 0);
    }

    #[test]
    fn pfc_pause_and_resume_transitions() {
        let pfc = PfcConfig::default();
        let mut b = SharedBuffer::new(1_000_000, 2);
        // Fill ingress 0 until it exceeds 11% of the free buffer.
        let mut paused = false;
        for _ in 0..200 {
            b.admit(1_000, 0);
            if let Some(p) = b.pfc_transition(0, &pfc) {
                paused = p;
                break;
            }
        }
        assert!(paused, "ingress should eventually trigger PFC");
        // Draining it back down must eventually produce a resume.
        let mut resumed = false;
        while b.ingress_occupancy(0) > 0 {
            b.release(1_000, 0);
            if let Some(p) = b.pfc_transition(0, &pfc) {
                assert!(!p);
                resumed = true;
                break;
            }
        }
        assert!(resumed, "ingress should eventually resume");
    }

    #[test]
    fn pfc_disabled_never_transitions() {
        let pfc = PfcConfig::disabled();
        let mut b = SharedBuffer::new(1_000, 1);
        b.admit(900, 0);
        assert_eq!(b.pfc_transition(0, &pfc), None);
    }

    #[test]
    fn independent_ingress_accounting() {
        let pfc = PfcConfig::default();
        let mut b = SharedBuffer::new(1_000_000, 3);
        // Ingress 1 fills; ingress 2 stays empty and must not be paused.
        for _ in 0..60 {
            b.admit(1_000, 1);
            b.pfc_transition(1, &pfc);
        }
        assert_eq!(b.pfc_transition(2, &pfc), None);
        assert!(!b.upstream_paused(2));
    }
}
