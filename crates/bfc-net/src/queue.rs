//! Physical FIFO queues.
//!
//! Modern switch ASICs give each egress port a small number of FIFO queues
//! (32 in the paper's hardware model). A [`PhysQueue`] is one such FIFO; it
//! remembers, for every queued packet, which ingress port it arrived on so
//! that per-ingress buffer accounting (needed for PFC) stays exact when the
//! packet eventually leaves.
//!
//! [`QueuedPacket`] storage is recycled: the backing ring buffer grows to
//! the queue's high-water mark and is then reused for every later packet, so
//! steady-state enqueue/dequeue never allocates (packets themselves are
//! fully inline — see `packet::IntPath` and `packet::PauseFrame`).

use std::collections::VecDeque;

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

use crate::packet::Packet;

/// A packet waiting in a queue, tagged with the ingress port it arrived on.
#[derive(Debug, Clone)]
pub struct QueuedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// Ingress port (local index at this switch) the packet arrived on.
    pub ingress: u32,
}

/// One FIFO queue of an egress port.
#[derive(Debug, Default)]
pub struct PhysQueue {
    packets: VecDeque<QueuedPacket>,
    bytes: u64,
    /// Running count of bytes ever enqueued (diagnostics).
    total_enqueued_bytes: u64,
}

impl PhysQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PhysQueue::default()
    }

    /// Appends a packet that arrived on `ingress`.
    pub fn push(&mut self, packet: Packet, ingress: u32) {
        self.bytes += packet.size_bytes as u64;
        self.total_enqueued_bytes += packet.size_bytes as u64;
        self.packets.push_back(QueuedPacket { packet, ingress });
    }

    /// Removes and returns the packet at the head.
    pub fn pop(&mut self) -> Option<QueuedPacket> {
        let qp = self.packets.pop_front()?;
        self.bytes -= qp.packet.size_bytes as u64;
        Some(qp)
    }

    /// The packet at the head, if any.
    pub fn head(&self) -> Option<&QueuedPacket> {
        self.packets.front()
    }

    /// Queue occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes ever enqueued (monotone counter).
    pub fn total_enqueued_bytes(&self) -> u64 {
        self.total_enqueued_bytes
    }

    /// Iterates over the queued packets from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedPacket> {
        self.packets.iter()
    }

    /// Number of packet slots the queue can hold before its backing storage
    /// grows again. The storage never shrinks: it is recycled across
    /// enqueue/dequeue cycles, which is what keeps the steady-state packet
    /// path allocation-free.
    pub fn storage_capacity(&self) -> usize {
        self.packets.capacity()
    }

    /// Serializes the queue contents (head-to-tail order) and the monotone
    /// enqueue counter for snapshot/restore. The byte occupancy is derived
    /// from the packets on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.packets.len());
        for qp in &self.packets {
            qp.packet.save_state(w);
            w.put_u32(qp.ingress);
        }
        w.put_u64(self.total_enqueued_bytes);
    }

    /// Rebuilds a queue from [`PhysQueue::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_count(1)?;
        let mut q = PhysQueue::new();
        for _ in 0..n {
            let packet = Packet::restore_state(r)?;
            let ingress = r.get_u32()?;
            q.bytes += packet.size_bytes as u64;
            q.packets.push_back(QueuedPacket { packet, ingress });
        }
        q.total_enqueued_bytes = r.get_u64()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FlowId, NodeId};

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, size, 7, false)
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut q = PhysQueue::new();
        assert!(q.is_empty());
        q.push(pkt(0, 1000), 3);
        q.push(pkt(1, 500), 4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 1500);
        assert_eq!(q.head().unwrap().packet.seq, 0);
        let first = q.pop().unwrap();
        assert_eq!(first.packet.seq, 0);
        assert_eq!(first.ingress, 3);
        assert_eq!(q.bytes(), 500);
        let second = q.pop().unwrap();
        assert_eq!(second.packet.seq, 1);
        assert_eq!(second.ingress, 4);
        assert!(q.pop().is_none());
        assert_eq!(q.bytes(), 0);
        assert_eq!(q.total_enqueued_bytes(), 1500);
    }

    #[test]
    fn storage_is_recycled_across_push_pop_cycles() {
        let mut q = PhysQueue::new();
        for s in 0..16 {
            q.push(pkt(s, 100), 0);
        }
        while q.pop().is_some() {}
        let cap = q.storage_capacity();
        assert!(cap >= 16);
        // Refilling to the previous high-water mark must not grow storage.
        for cycle in 0..8 {
            for s in 0..16 {
                q.push(pkt(s, 100), cycle);
            }
            while q.pop().is_some() {}
            assert_eq!(q.storage_capacity(), cap, "steady state must not reallocate");
        }
    }

    #[test]
    fn iter_sees_queue_contents() {
        let mut q = PhysQueue::new();
        for s in 0..5 {
            q.push(pkt(s, 100), 0);
        }
        let seqs: Vec<u64> = q.iter().map(|qp| qp.packet.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
