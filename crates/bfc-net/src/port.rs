//! Egress port model: physical queues, deficit-round-robin scheduling,
//! strict-priority control and high-priority queues, and pause state.
//!
//! Each full-duplex port has an egress side modelled here. The egress owns
//! the link toward its peer, a configurable number of physical FIFO queues
//! scheduled by deficit round robin (the paper's fair-queueing choice), plus
//! three special queues:
//!
//! * a **control queue** for ACK/CNP-class packets (strict priority, never
//!   paused by BFC),
//! * the **high-priority queue** that BFC uses for the first packet of every
//!   flow (§3.7), and
//! * an **overflow queue** for packets whose flow could not be tracked in the
//!   flow table (§3.8); it participates in DRR like a physical queue.
//!
//! Pause state is two-fold: PFC pauses the whole egress, while a received
//! BFC [`PauseFrame`] pauses individual physical queues based on the VFID of
//! their head packet, re-evaluated after every dequeue (§3.6).

use std::collections::VecDeque;

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{SimDuration, SimTime};

use crate::link::Link;
use crate::packet::{Packet, PauseFrame};
use crate::policy::QueueTarget;
use crate::queue::{PhysQueue, QueuedPacket};
use crate::types::NodeId;

/// The egress side of one switch/host port.
#[derive(Debug)]
pub struct Port {
    /// The node on the other end of the cable and its local port index there.
    pub peer: Option<(NodeId, u32)>,
    /// The attached link (egress direction). Mutable under network dynamics
    /// (rate degradation) via [`Port::set_link_rate`].
    pub link: Link,

    control: PhysQueue,
    high_priority: PhysQueue,
    overflow: PhysQueue,
    queues: Vec<PhysQueue>,

    // Deficit round robin state over `queues` plus the overflow queue, which
    // is scheduled as index `queues.len()`. Instead of scanning every queue,
    // the scheduler keeps the backlogged queues in `active` (rotation order)
    // and only ever touches those — with Q queues per port but a handful
    // backlogged, a pick is O(backlogged), not O(Q).
    deficit: Vec<u64>,
    active: VecDeque<usize>,
    in_active: Vec<bool>,
    drr_credited: bool,
    quantum: u32,

    // Incrementally maintained counters over the physical queues, updated on
    // every empty<->non-empty transition, head change and pause-frame install
    // so the per-enqueue BFC pause-threshold path reads them in O(1) instead
    // of scanning all Q queues (`active_queue_count`). `active_counted[i]`
    // records whether queue `i` currently contributes to `active_count`.
    occupied_count: usize,
    active_count: usize,
    active_counted: Vec<bool>,

    // Running byte total over the data-plane queues (physical + high
    // priority + overflow, control excluded), maintained on every enqueue,
    // dequeue and flush so the per-packet ECN/INT/depth-histogram reads of
    // `data_queued_bytes` are O(1) instead of an O(Q) scan.
    data_bytes: u64,

    /// True while the transmitter is serializing a packet.
    pub busy: bool,

    /// Whether the attached cable is up. A down egress never transmits; its
    /// queues are flushed by the owning switch when the link dies.
    up: bool,

    pfc_paused: bool,
    pfc_pause_started: Option<SimTime>,
    pfc_paused_total: SimDuration,

    pause_frame: Option<PauseFrame>,

    tx_bytes: u64,
    tx_data_bytes: u64,
    tx_packets: u64,
}

impl Port {
    /// Creates an egress port with `num_queues` physical queues and the given
    /// DRR quantum (normally the MTU).
    pub fn new(link: Link, peer: Option<(NodeId, u32)>, num_queues: usize, quantum: u32) -> Self {
        assert!(num_queues > 0, "a port needs at least one physical queue");
        Port {
            peer,
            link,
            control: PhysQueue::new(),
            high_priority: PhysQueue::new(),
            overflow: PhysQueue::new(),
            queues: (0..num_queues).map(|_| PhysQueue::new()).collect(),
            deficit: vec![0; num_queues + 1],
            active: VecDeque::new(),
            in_active: vec![false; num_queues + 1],
            drr_credited: false,
            quantum,
            occupied_count: 0,
            active_count: 0,
            active_counted: vec![false; num_queues],
            data_bytes: 0,
            busy: false,
            up: true,
            pfc_paused: false,
            pfc_pause_started: None,
            pfc_paused_total: SimDuration::ZERO,
            pause_frame: None,
            tx_bytes: 0,
            tx_data_bytes: 0,
            tx_packets: 0,
        }
    }

    /// Whether the attached cable is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Marks the cable up or down. Going down also clears the pause state:
    /// PFC and per-flow pauses are MAC-level state that does not survive a
    /// link reset (accumulated pause time is preserved for metrics).
    pub fn set_up(&mut self, up: bool, now: SimTime) {
        self.up = up;
        if !up {
            self.set_pfc_paused(false, now);
            self.set_pause_frame(None);
        }
    }

    /// Changes the egress link rate (degradation / repair under dynamics).
    pub fn set_link_rate(&mut self, gbps: f64) {
        assert!(gbps > 0.0, "link rate must be positive");
        self.link.rate_gbps = gbps;
    }

    /// Number of physical queues (excluding control/high-priority/overflow).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Bytes queued in physical queue `i`.
    pub fn queue_bytes(&self, i: usize) -> u64 {
        self.queues[i].bytes()
    }

    /// Packets queued in physical queue `i`.
    pub fn queue_len(&self, i: usize) -> usize {
        self.queues[i].len()
    }

    /// True if physical queue `i` holds no packets.
    pub fn queue_is_empty(&self, i: usize) -> bool {
        self.queues[i].is_empty()
    }

    /// True if the queue a [`QueueTarget`] names currently holds nothing.
    /// The switch probes this around enqueue/dequeue to detect the
    /// empty<->non-empty transitions the flight recorder reports.
    pub fn target_is_empty(&self, target: QueueTarget) -> bool {
        match target {
            QueueTarget::Control => self.control.is_empty(),
            QueueTarget::HighPriority => self.high_priority.is_empty(),
            QueueTarget::Overflow => self.overflow.is_empty(),
            QueueTarget::Phys(i) => self.queues[i].is_empty(),
        }
    }

    /// Total bytes queued across all data-plane queues (physical + high
    /// priority + overflow). Used for ECN marking, INT telemetry and the
    /// queue-depth histogram — all per-packet paths, so the total is a
    /// counter maintained on enqueue/dequeue/flush, not an O(Q) scan.
    pub fn data_queued_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.data_bytes,
            self.queues.iter().map(|q| q.bytes()).sum::<u64>()
                + self.high_priority.bytes()
                + self.overflow.bytes(),
            "data-plane byte counter out of sync"
        );
        self.data_bytes
    }

    /// Total bytes queued including the control queue.
    pub fn total_queued_bytes(&self) -> u64 {
        self.data_queued_bytes() + self.control.bytes()
    }

    /// True if nothing at all is queued on this egress.
    pub fn is_idle_empty(&self) -> bool {
        self.total_queued_bytes() == 0
    }

    /// Number of physical queues that currently hold packets. O(1): the
    /// count is maintained incrementally on empty<->non-empty transitions.
    pub fn occupied_queue_count(&self) -> usize {
        debug_assert_eq!(
            self.occupied_count,
            self.queues.iter().filter(|q| !q.is_empty()).count(),
            "occupied-queue counter out of sync"
        );
        self.occupied_count
    }

    /// Re-derives whether physical queue `i` belongs in `active_count`
    /// (non-empty and not paused) after its head or the pause frame changed.
    /// The pause check short-circuits on the (common) no-frame case so
    /// schemes that never install BFC pause frames pay one branch, not a
    /// head lookup.
    #[inline]
    fn refresh_active(&mut self, i: usize) {
        let counted = !self.queues[i].is_empty()
            && !(self.pause_frame.is_some() && self.is_queue_paused(i));
        if counted != self.active_counted[i] {
            self.active_counted[i] = counted;
            if counted {
                self.active_count += 1;
            } else {
                self.active_count -= 1;
            }
        }
    }

    /// Re-derives the active flag of every physical queue (pause-frame
    /// installs can flip any subset of them).
    fn refresh_active_all(&mut self) {
        for i in 0..self.queues.len() {
            self.refresh_active(i);
        }
    }

    /// True if physical queue `i` is paused by the most recent BFC pause
    /// frame received from the downstream peer (head-of-queue VFID match).
    pub fn is_queue_paused(&self, i: usize) -> bool {
        match (&self.pause_frame, self.queues[i].head()) {
            (Some(frame), Some(head)) => frame.contains(head.packet.vfid),
            _ => false,
        }
    }

    /// Number of *active* queues: non-empty physical queues that are not
    /// paused, plus the high-priority and overflow queues if they hold data.
    /// This is the `Nactive` of the paper's pause threshold (§3.4). O(1):
    /// the BFC policy evaluates it on every enqueue and dequeue, so the
    /// physical-queue part is a counter maintained on empty<->non-empty
    /// transitions, head changes and pause-frame installs instead of an O(Q)
    /// scan per packet.
    pub fn active_queue_count(&self) -> usize {
        debug_assert_eq!(
            self.active_count,
            (0..self.queues.len())
                .filter(|&i| !self.queues[i].is_empty() && !self.is_queue_paused(i))
                .count(),
            "active-queue counter out of sync"
        );
        self.active_count
            + usize::from(!self.high_priority.is_empty())
            + usize::from(!self.overflow.is_empty())
    }

    /// Installs the latest BFC pause frame received from the downstream peer.
    /// Passing `None` clears all per-queue pauses.
    pub fn set_pause_frame(&mut self, frame: Option<PauseFrame>) {
        self.pause_frame = frame;
        // A new frame can pause or release any physical queue.
        self.refresh_active_all();
    }

    /// The most recently received pause frame, if any.
    pub fn pause_frame(&self) -> Option<&PauseFrame> {
        self.pause_frame.as_ref()
    }

    /// Whether the whole egress is paused by PFC.
    pub fn is_pfc_paused(&self) -> bool {
        self.pfc_paused
    }

    /// Updates the PFC pause state, accumulating paused time for metrics.
    pub fn set_pfc_paused(&mut self, paused: bool, now: SimTime) {
        if paused == self.pfc_paused {
            return;
        }
        if paused {
            self.pfc_pause_started = Some(now);
        } else if let Some(start) = self.pfc_pause_started.take() {
            self.pfc_paused_total += now.saturating_since(start);
        }
        self.pfc_paused = paused;
    }

    /// Total time this egress has spent paused by PFC. If currently paused,
    /// time up to `now` is included.
    pub fn pfc_paused_time(&self, now: SimTime) -> SimDuration {
        let mut total = self.pfc_paused_total;
        if let Some(start) = self.pfc_pause_started {
            total += now.saturating_since(start);
        }
        total
    }

    /// Total bytes transmitted (all packet kinds).
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Total data bytes transmitted.
    pub fn tx_data_bytes(&self) -> u64 {
        self.tx_data_bytes
    }

    /// Total packets transmitted.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Enqueues a packet into the queue selected by the policy.
    pub fn enqueue(&mut self, target: QueueTarget, packet: Packet, ingress: u32) {
        if target != QueueTarget::Control {
            self.data_bytes += packet.size_bytes as u64;
        }
        match target {
            QueueTarget::Control => self.control.push(packet, ingress),
            QueueTarget::HighPriority => self.high_priority.push(packet, ingress),
            QueueTarget::Overflow => {
                self.overflow.push(packet, ingress);
                self.drr_activate(self.overflow_index());
            }
            QueueTarget::Phys(i) => {
                assert!(i < self.queues.len(), "physical queue index out of range");
                let was_empty = self.queues[i].is_empty();
                self.queues[i].push(packet, ingress);
                if was_empty {
                    // Empty -> non-empty: the head (and thus the pause
                    // status) changed too.
                    self.occupied_count += 1;
                    self.refresh_active(i);
                }
                self.drr_activate(i);
            }
        }
    }

    /// Adds a freshly backlogged queue to the DRR rotation.
    fn drr_activate(&mut self, i: usize) {
        if !self.in_active[i] {
            self.in_active[i] = true;
            self.active.push_back(i);
        }
    }

    /// Head packet of physical queue `i`.
    pub fn queue_head(&self, i: usize) -> Option<&QueuedPacket> {
        self.queues[i].head()
    }

    /// Picks the next packet to transmit, honouring strict priority
    /// (control > high priority > DRR over physical + overflow queues) and
    /// pause state. Returns the packet, the ingress it arrived on, and the
    /// queue it came from. Does not consider `busy` or PFC — the switch
    /// checks those before calling.
    pub fn dequeue_next(&mut self) -> Option<(QueuedPacket, QueueTarget)> {
        if !self.control.is_empty() {
            return self.control.pop().map(|qp| (qp, QueueTarget::Control));
        }
        if !self.high_priority.is_empty() {
            return self.high_priority.pop().map(|qp| {
                self.data_bytes -= qp.packet.size_bytes as u64;
                (qp, QueueTarget::HighPriority)
            });
        }
        self.drr_pick()
    }

    /// Scheduling index used for the overflow queue inside the DRR state.
    fn overflow_index(&self) -> usize {
        self.queues.len()
    }

    fn drr_head_size(&self, i: usize) -> u64 {
        let head = if i == self.overflow_index() {
            self.overflow.head()
        } else {
            self.queues[i].head()
        };
        head.map(|qp| qp.packet.size_bytes as u64).unwrap_or(0)
    }

    fn drr_pop(&mut self, i: usize) -> Option<QueuedPacket> {
        let popped = if i == self.overflow_index() {
            self.overflow.pop()
        } else {
            let popped = self.queues[i].pop();
            if popped.is_some() {
                if self.queues[i].is_empty() {
                    self.occupied_count -= 1;
                }
                // The head changed, so the pause status may have flipped.
                self.refresh_active(i);
            }
            popped
        };
        if let Some(qp) = &popped {
            self.data_bytes -= qp.packet.size_bytes as u64;
        }
        popped
    }

    fn drr_queue_empty(&self, i: usize) -> bool {
        if i == self.overflow_index() {
            self.overflow.is_empty()
        } else {
            self.queues[i].is_empty()
        }
    }

    /// Moves the current (front) queue to the back of the rotation, closing
    /// out its visit.
    fn drr_rotate(&mut self) {
        if let Some(i) = self.active.pop_front() {
            self.active.push_back(i);
        }
        self.drr_credited = false;
    }

    /// Drops the current (front) queue from the rotation — it drained, so its
    /// residual deficit is discarded, per classic DRR.
    fn drr_deactivate_front(&mut self, i: usize) {
        self.deficit[i] = 0;
        self.in_active[i] = false;
        self.active.pop_front();
        self.drr_credited = false;
    }

    fn drr_pick(&mut self) -> Option<(QueuedPacket, QueueTarget)> {
        // Only backlogged queues live in `active`. Each needs at most two
        // visits per pass: one to close out a previous partially-served visit
        // (residual deficit too small) and one freshly credited visit.
        // Bounding by 2·|active|+1 guarantees every backlogged, unpaused
        // queue is offered a full quantum before we conclude nothing is
        // schedulable (everything left is paused).
        let mut scanned = 0;
        let limit = 2 * self.active.len() + 1;
        while scanned < limit {
            let Some(&i) = self.active.front() else {
                return None;
            };
            if self.drr_queue_empty(i) {
                // Flush paths can drain queues without going through
                // `drr_pop`; shed the stale entry.
                self.drr_deactivate_front(i);
                continue;
            }
            if i != self.overflow_index() && self.is_queue_paused(i) {
                // A paused queue forfeits its residual deficit, exactly as
                // the previous full-scan scheduler zeroed ineligible queues
                // on every visit — pausing must not bank credit to burst
                // with on resume.
                self.deficit[i] = 0;
                self.drr_rotate();
                scanned += 1;
                continue;
            }
            if !self.drr_credited {
                self.deficit[i] = self.deficit[i].saturating_add(self.quantum as u64);
                self.drr_credited = true;
            }
            let head_size = self.drr_head_size(i);
            if self.deficit[i] >= head_size {
                let qp = self.drr_pop(i).expect("eligible queue must have a head");
                self.deficit[i] -= head_size;
                if self.drr_queue_empty(i) {
                    self.drr_deactivate_front(i);
                } else if i != self.overflow_index() && self.is_queue_paused(i) {
                    // New head is paused: move on, keeping the residual.
                    self.drr_rotate();
                }
                let target = if i == self.overflow_index() {
                    QueueTarget::Overflow
                } else {
                    QueueTarget::Phys(i)
                };
                return Some((qp, target));
            }
            // Deficit insufficient: move on, keeping the residual.
            self.drr_rotate();
            scanned += 1;
        }
        None
    }

    /// Removes and returns every queued packet (control, high-priority,
    /// overflow and physical queues, in that order), resetting the DRR state.
    /// Used by the switch when the attached cable dies: the packets are
    /// handed back so buffer accounting and blackhole counting stay exact.
    pub fn flush_all(&mut self) -> Vec<(QueuedPacket, QueueTarget)> {
        let mut flushed = Vec::new();
        while let Some(qp) = self.control.pop() {
            flushed.push((qp, QueueTarget::Control));
        }
        while let Some(qp) = self.high_priority.pop() {
            flushed.push((qp, QueueTarget::HighPriority));
        }
        while let Some(qp) = self.overflow.pop() {
            flushed.push((qp, QueueTarget::Overflow));
        }
        for i in 0..self.queues.len() {
            while let Some(qp) = self.queues[i].pop() {
                flushed.push((qp, QueueTarget::Phys(i)));
            }
        }
        self.active.clear();
        self.in_active.fill(false);
        self.deficit.fill(0);
        self.drr_credited = false;
        self.occupied_count = 0;
        self.active_count = 0;
        self.active_counted.fill(false);
        self.data_bytes = 0;
        flushed
    }

    /// Records that a packet was handed to the transmitter.
    pub fn note_transmitted(&mut self, packet: &Packet) {
        self.tx_bytes += packet.size_bytes as u64;
        self.tx_packets += 1;
        if packet.is_data() {
            self.tx_data_bytes += packet.size_bytes as u64;
        }
    }

    /// Serializes the port's mutable state: queues, DRR rotation, pause
    /// state, link rate (mutable under dynamics) and transmit counters. The
    /// static configuration (peer, propagation, queue count, quantum) is not
    /// captured — restore overlays onto a freshly built port.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_f64(self.link.rate_gbps);
        w.put_bool(self.busy);
        w.put_bool(self.up);
        w.put_bool(self.pfc_paused);
        match self.pfc_pause_started {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t.as_picos());
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.pfc_paused_total.as_picos());
        match &self.pause_frame {
            Some(frame) => {
                w.put_bool(true);
                frame.save_state(w);
            }
            None => w.put_bool(false),
        }
        self.control.save_state(w);
        self.high_priority.save_state(w);
        self.overflow.save_state(w);
        w.put_usize(self.queues.len());
        for q in &self.queues {
            q.save_state(w);
        }
        for &d in &self.deficit {
            w.put_u64(d);
        }
        // The DRR rotation order is scheduling state: serialize verbatim.
        w.put_usize(self.active.len());
        for &i in &self.active {
            w.put_usize(i);
        }
        w.put_bool(self.drr_credited);
        w.put_u64(self.tx_bytes);
        w.put_u64(self.tx_data_bytes);
        w.put_u64(self.tx_packets);
    }

    /// Restores state captured by [`Port::save_state`] into this port, which
    /// must have been built with the same queue count. The incrementally
    /// maintained occupancy/active counters are recomputed from the restored
    /// queues and pause frame.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.link.rate_gbps = r.get_f64()?;
        if !(self.link.rate_gbps > 0.0) {
            return Err(SnapError::Corrupt("non-positive link rate"));
        }
        self.busy = r.get_bool()?;
        self.up = r.get_bool()?;
        self.pfc_paused = r.get_bool()?;
        self.pfc_pause_started = if r.get_bool()? {
            Some(SimTime::from_picos(r.get_u64()?))
        } else {
            None
        };
        self.pfc_paused_total = SimDuration::from_picos(r.get_u64()?);
        self.pause_frame = if r.get_bool()? {
            Some(PauseFrame::restore_state(r)?)
        } else {
            None
        };
        self.control = PhysQueue::restore_state(r)?;
        self.high_priority = PhysQueue::restore_state(r)?;
        self.overflow = PhysQueue::restore_state(r)?;
        let nq = r.get_usize()?;
        if nq != self.queues.len() {
            return Err(SnapError::Corrupt("physical queue count mismatch"));
        }
        for q in &mut self.queues {
            *q = PhysQueue::restore_state(r)?;
        }
        for d in &mut self.deficit {
            *d = r.get_u64()?;
        }
        let active_len = r.get_count(8)?;
        self.active.clear();
        self.in_active.fill(false);
        for _ in 0..active_len {
            let i = r.get_usize()?;
            if i > self.queues.len() || self.in_active[i] {
                return Err(SnapError::Corrupt("invalid DRR rotation entry"));
            }
            self.in_active[i] = true;
            self.active.push_back(i);
        }
        self.drr_credited = r.get_bool()?;
        self.tx_bytes = r.get_u64()?;
        self.tx_data_bytes = r.get_u64()?;
        self.tx_packets = r.get_u64()?;
        // Rebuild the derived occupancy/active/byte counters.
        self.occupied_count = self.queues.iter().filter(|q| !q.is_empty()).count();
        self.active_count = 0;
        self.active_counted.fill(false);
        self.refresh_active_all();
        self.data_bytes = self.queues.iter().map(|q| q.bytes()).sum::<u64>()
            + self.high_priority.bytes()
            + self.overflow.bytes();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FlowId;

    fn port(nq: usize) -> Port {
        Port::new(Link::datacenter_default(), Some((NodeId(9), 0)), nq, 1000)
    }

    fn data(flow: u32, seq: u64, size: u32, vfid: u32) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, size, vfid, false)
    }

    #[test]
    fn strict_priority_order() {
        let mut p = port(4);
        p.enqueue(QueueTarget::Phys(0), data(1, 0, 1000, 1), 0);
        p.enqueue(QueueTarget::HighPriority, data(2, 0, 1000, 2), 0);
        p.enqueue(QueueTarget::Control, Packet::cnp(FlowId(3), NodeId(5), NodeId(0)), 0);
        let (first, t1) = p.dequeue_next().unwrap();
        assert_eq!(t1, QueueTarget::Control);
        assert!(matches!(first.packet.kind, crate::packet::PacketKind::Cnp));
        let (_, t2) = p.dequeue_next().unwrap();
        assert_eq!(t2, QueueTarget::HighPriority);
        let (_, t3) = p.dequeue_next().unwrap();
        assert_eq!(t3, QueueTarget::Phys(0));
        assert!(p.dequeue_next().is_none());
    }

    #[test]
    fn drr_round_robins_among_queues() {
        let mut p = port(4);
        for q in 0..3usize {
            for s in 0..3u64 {
                p.enqueue(QueueTarget::Phys(q), data(q as u32, s, 1000, q as u32), 0);
            }
        }
        let mut order = Vec::new();
        while let Some((qp, _)) = p.dequeue_next() {
            order.push(qp.packet.flow.0);
        }
        assert_eq!(order.len(), 9);
        // Each round serves one packet from each backlogged queue (equal sizes).
        assert_eq!(&order[0..3], &[0, 1, 2]);
        assert_eq!(&order[3..6], &[0, 1, 2]);
        assert_eq!(&order[6..9], &[0, 1, 2]);
    }

    #[test]
    fn drr_is_byte_fair_for_unequal_packet_sizes() {
        // Queue 0 has 500 B packets, queue 1 has 1000 B packets. Over many
        // rounds both queues should transmit a similar number of bytes.
        let mut p = port(2);
        for s in 0..40u64 {
            p.enqueue(QueueTarget::Phys(0), data(0, s, 500, 0), 0);
        }
        for s in 0..20u64 {
            p.enqueue(QueueTarget::Phys(1), data(1, s, 1000, 1), 0);
        }
        let mut bytes = [0u64; 2];
        for _ in 0..30 {
            let (qp, _) = p.dequeue_next().unwrap();
            bytes[qp.packet.flow.0 as usize] += qp.packet.size_bytes as u64;
        }
        let diff = bytes[0].abs_diff(bytes[1]);
        assert!(diff <= 1000, "byte shares diverged: {bytes:?}");
    }

    #[test]
    fn paused_queue_is_skipped_and_resumes_on_new_frame() {
        let mut p = port(2);
        p.enqueue(QueueTarget::Phys(0), data(1, 0, 1000, 111), 0);
        p.enqueue(QueueTarget::Phys(1), data(2, 0, 1000, 222), 0);
        let mut frame = PauseFrame::new(128, 4);
        frame.insert(111);
        p.set_pause_frame(Some(frame));
        assert!(p.is_queue_paused(0));
        assert!(!p.is_queue_paused(1));
        assert_eq!(p.active_queue_count(), 1);
        let (qp, _) = p.dequeue_next().unwrap();
        assert_eq!(qp.packet.vfid, 222);
        // Only the paused queue remains; nothing can be scheduled.
        assert!(p.dequeue_next().is_none());
        // A new, empty frame unpauses it.
        p.set_pause_frame(Some(PauseFrame::new(128, 4)));
        let (qp, _) = p.dequeue_next().unwrap();
        assert_eq!(qp.packet.vfid, 111);
    }

    #[test]
    fn pfc_pause_time_accumulates() {
        let mut p = port(1);
        p.set_pfc_paused(true, SimTime::from_micros(10));
        p.set_pfc_paused(true, SimTime::from_micros(12)); // no-op
        p.set_pfc_paused(false, SimTime::from_micros(15));
        assert_eq!(p.pfc_paused_time(SimTime::from_micros(20)).as_nanos(), 5_000);
        p.set_pfc_paused(true, SimTime::from_micros(30));
        assert_eq!(p.pfc_paused_time(SimTime::from_micros(31)).as_nanos(), 6_000);
    }

    #[test]
    fn byte_accounting_and_counters() {
        let mut p = port(2);
        p.enqueue(QueueTarget::Phys(1), data(1, 0, 700, 5), 2);
        p.enqueue(QueueTarget::HighPriority, data(1, 1, 300, 5), 2);
        assert_eq!(p.data_queued_bytes(), 1000);
        assert_eq!(p.queue_bytes(1), 700);
        assert_eq!(p.occupied_queue_count(), 1);
        let (qp, _) = p.dequeue_next().unwrap();
        p.note_transmitted(&qp.packet);
        assert_eq!(p.tx_bytes(), 300);
        assert_eq!(p.tx_data_bytes(), 300);
        assert_eq!(p.tx_packets(), 1);
    }

    #[test]
    fn overflow_queue_participates_in_drr() {
        let mut p = port(1);
        p.enqueue(QueueTarget::Phys(0), data(0, 0, 1000, 1), 0);
        p.enqueue(QueueTarget::Overflow, data(1, 0, 1000, 2), 0);
        p.enqueue(QueueTarget::Phys(0), data(0, 1, 1000, 1), 0);
        p.enqueue(QueueTarget::Overflow, data(1, 1, 1000, 2), 0);
        let mut flows = Vec::new();
        while let Some((qp, _)) = p.dequeue_next() {
            flows.push(qp.packet.flow.0);
        }
        assert_eq!(flows.len(), 4);
        assert_eq!(flows.iter().filter(|&&f| f == 0).count(), 2);
        assert_eq!(flows.iter().filter(|&&f| f == 1).count(), 2);
        // Interleaved, not back-to-back.
        assert_ne!(flows, vec![0, 0, 1, 1]);
    }
}
