//! Packets, control frames and HPCC in-band telemetry.
//!
//! Everything that travels on a link is a [`Packet`]. Data, acknowledgements
//! and congestion-notification packets traverse switch queues like ordinary
//! traffic (ACK-class packets ride the strict-priority control queue);
//! PFC pause frames and BFC flow-pause frames are MAC-level control frames
//! delivered out of band (they never sit behind data in an egress queue).

use bfc_sim::rng::mix64;
use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};

use crate::types::{FlowId, NodeId};

/// Telemetry appended by each switch hop when HPCC-style INT is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntHop {
    /// Queue length (bytes) at the egress port when the packet was sent.
    pub qlen_bytes: u64,
    /// Cumulative bytes transmitted by the egress port, including this packet.
    pub tx_bytes: u64,
    /// Timestamp (picoseconds) at which the packet was transmitted.
    pub timestamp_ps: u64,
    /// Link capacity in Gbps.
    pub link_gbps: f64,
}

/// Maximum number of switch hops a packet can record telemetry for.
///
/// The longest path in any built-in topology is the cross-data-center one:
/// ToR → spine → gateway → gateway → spine → ToR, i.e. six switch hops
/// (switches only append INT to data packets, so ACK echoes never exceed
/// this either). Sizing the inline array to this bound is what lets the
/// per-packet path run without heap allocation while keeping `Packet` small
/// enough to memcpy cheaply; a deeper custom topology with INT enabled
/// would need this constant raised.
pub const MAX_INT_HOPS: usize = 6;

/// Fixed-capacity inline list of per-hop INT records (a `SmallVec`-style
/// array sized to [`MAX_INT_HOPS`]), replacing the `Vec<IntHop>` the packet
/// used to carry so appending telemetry never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntPath {
    len: u8,
    hops: [IntHop; MAX_INT_HOPS],
}

impl IntPath {
    const EMPTY_HOP: IntHop = IntHop {
        qlen_bytes: 0,
        tx_bytes: 0,
        timestamp_ps: 0,
        link_gbps: 0.0,
    };

    /// An empty telemetry path.
    pub const fn new() -> Self {
        IntPath {
            len: 0,
            hops: [Self::EMPTY_HOP; MAX_INT_HOPS],
        }
    }

    /// Appends one hop record. Panics if the packet has already traversed
    /// [`MAX_INT_HOPS`] switches — no supported topology is that deep.
    pub fn push(&mut self, hop: IntHop) {
        assert!(
            (self.len as usize) < MAX_INT_HOPS,
            "packet traversed more than {MAX_INT_HOPS} INT-recording hops"
        );
        self.hops[self.len as usize] = hop;
        self.len += 1;
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no hops were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recorded hops, in traversal order.
    pub fn as_slice(&self) -> &[IntHop] {
        &self.hops[..self.len as usize]
    }

    /// Builds a path from a slice of at most [`MAX_INT_HOPS`] records.
    pub fn from_slice(hops: &[IntHop]) -> Self {
        let mut path = IntPath::new();
        for &hop in hops {
            path.push(hop);
        }
        path
    }

    /// Serializes the recorded hops for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u8(self.len);
        for hop in self.as_slice() {
            w.put_u64(hop.qlen_bytes);
            w.put_u64(hop.tx_bytes);
            w.put_u64(hop.timestamp_ps);
            w.put_f64(hop.link_gbps);
        }
    }

    /// Rebuilds a path from [`IntPath::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_u8()? as usize;
        if len > MAX_INT_HOPS {
            return Err(SnapError::Corrupt("INT path longer than MAX_INT_HOPS"));
        }
        let mut path = IntPath::new();
        for _ in 0..len {
            path.push(IntHop {
                qlen_bytes: r.get_u64()?,
                tx_bytes: r.get_u64()?,
                timestamp_ps: r.get_u64()?,
                link_gbps: r.get_f64()?,
            });
        }
        Ok(path)
    }
}

impl Default for IntPath {
    fn default() -> Self {
        IntPath::new()
    }
}

impl std::ops::Deref for IntPath {
    type Target = [IntHop];
    fn deref(&self) -> &[IntHop] {
        self.as_slice()
    }
}

impl std::ops::Index<usize> for IntPath {
    type Output = IntHop;
    fn index(&self, i: usize) -> &IntHop {
        &self.as_slice()[i]
    }
}

impl<'a> IntoIterator for &'a IntPath {
    type Item = &'a IntHop;
    type IntoIter = std::slice::Iter<'a, IntHop>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Largest pause-frame bloom filter the inline representation supports, in
/// bytes. 128 bytes is the paper's default and the top of the Fig. 14 sweep.
pub const MAX_PAUSE_FRAME_BYTES: usize = 128;
const PAUSE_FRAME_WORDS: usize = MAX_PAUSE_FRAME_BYTES / 8;

/// A multistage bloom filter naming the set of paused virtual flows on one
/// ingress link (§3.6 of the paper).
///
/// The downstream switch maintains a *counting* version of this filter (in
/// `bfc-core`) and periodically snapshots it into a `PauseFrame` that is sent
/// upstream. The upstream side only needs membership queries, which is what
/// this type provides. A virtual flow is paused iff **all** `num_hashes` bit
/// positions derived from its VFID are set.
///
/// The bit array is stored inline (sized to [`MAX_PAUSE_FRAME_BYTES`]) so
/// building, sending and installing pause frames never allocates; the type
/// is `Copy` because duplicating it is a plain memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseFrame {
    bits: [u64; PAUSE_FRAME_WORDS],
    num_bits: u32,
    num_hashes: u32,
}

impl PauseFrame {
    /// Creates an empty frame of `size_bytes` bytes using `num_hashes` hash
    /// functions. The paper's default is 128 bytes and 4 hashes.
    pub fn new(size_bytes: usize, num_hashes: u32) -> Self {
        assert!(size_bytes > 0, "bloom filter must have at least one byte");
        assert!(
            size_bytes <= MAX_PAUSE_FRAME_BYTES,
            "bloom filter larger than {MAX_PAUSE_FRAME_BYTES} bytes"
        );
        assert!(num_hashes > 0, "bloom filter must use at least one hash");
        let num_bits = (size_bytes * 8) as u32;
        PauseFrame {
            bits: [0; PAUSE_FRAME_WORDS],
            num_bits,
            num_hashes,
        }
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> u32 {
        self.num_bits
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Size of the filter on the wire in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.num_bits as usize) / 8
    }

    /// The `i`-th bit position for a VFID. All switches and NICs derive the
    /// same positions because the function is deterministic.
    #[inline]
    pub fn bit_position(vfid: u32, hash_index: u32, num_bits: u32) -> u32 {
        (mix64(((hash_index as u64) << 32) | vfid as u64) % num_bits as u64) as u32
    }

    /// Sets bit `pos`.
    #[inline]
    pub fn set_bit(&mut self, pos: u32) {
        debug_assert!(pos < self.num_bits);
        self.bits[(pos / 64) as usize] |= 1u64 << (pos % 64);
    }

    /// Reads bit `pos`.
    #[inline]
    pub fn get_bit(&self, pos: u32) -> bool {
        debug_assert!(pos < self.num_bits);
        self.bits[(pos / 64) as usize] & (1u64 << (pos % 64)) != 0
    }

    /// Marks a virtual flow as paused.
    pub fn insert(&mut self, vfid: u32) {
        for i in 0..self.num_hashes {
            self.set_bit(Self::bit_position(vfid, i, self.num_bits));
        }
    }

    /// True if the virtual flow matches on all hash positions, i.e. the
    /// upstream must treat it as paused. False positives are possible (that
    /// is the bloom-filter trade-off the paper accepts); false negatives are
    /// not.
    pub fn contains(&self, vfid: u32) -> bool {
        (0..self.num_hashes).all(|i| self.get_bit(Self::bit_position(vfid, i, self.num_bits)))
    }

    /// True if no bits are set (nothing is paused).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of set bits (used by tests and diagnostics).
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Serializes the filter (bit words and geometry) for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u32(self.num_bits);
        w.put_u32(self.num_hashes);
        for &word in &self.bits {
            w.put_u64(word);
        }
    }

    /// Rebuilds a filter from [`PauseFrame::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let num_bits = r.get_u32()?;
        let num_hashes = r.get_u32()?;
        if num_bits == 0
            || num_bits % 8 != 0
            || num_bits as usize > MAX_PAUSE_FRAME_BYTES * 8
            || num_hashes == 0
        {
            return Err(SnapError::Corrupt("pause-frame geometry out of range"));
        }
        let mut bits = [0u64; PAUSE_FRAME_WORDS];
        for word in &mut bits {
            *word = r.get_u64()?;
        }
        Ok(PauseFrame {
            bits,
            num_bits,
            num_hashes,
        })
    }
}

/// What kind of packet this is.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketKind {
    /// Application data carried by an RDMA flow.
    Data,
    /// Cumulative acknowledgement (Go-Back-N). `is_nack` signals an
    /// out-of-order arrival and asks the sender to rewind to `cumulative_seq`.
    Ack {
        /// Next packet sequence number expected by the receiver.
        cumulative_seq: u64,
        /// True if this is a negative acknowledgement (out-of-order data).
        is_nack: bool,
        /// True if the acknowledged data packet carried an ECN CE mark.
        ecn_echo: bool,
    },
    /// DCQCN congestion notification packet sent by the receiver NIC.
    Cnp,
    /// Priority Flow Control pause (`pause == true`) or resume frame for the
    /// single traffic class the evaluation models.
    PfcPause {
        /// True to pause the upstream transmitter, false to resume it.
        pause: bool,
    },
    /// BFC per-flow pause frame: a bloom filter over paused VFIDs for one
    /// ingress link. The frame is boxed so this rare control variant does
    /// not inflate every `Packet` by the 128-byte inline filter; the one
    /// allocation happens per transmitted pause frame, never on the
    /// per-packet data path.
    FlowPause {
        /// Snapshot of the downstream switch's counting bloom filter.
        frame: Box<PauseFrame>,
    },
}

/// A packet (or control frame) traversing the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Flow this packet belongs to. Control frames use `FlowId(u32::MAX)`.
    pub flow: FlowId,
    /// Originating host (for data) or the node that generated the control frame.
    pub src: NodeId,
    /// Destination host (for data/ACK/CNP). Control frames are consumed by the
    /// adjacent node and carry their own destination here as well.
    pub dst: NodeId,
    /// Packet sequence number within the flow (packets, not bytes).
    pub seq: u64,
    /// Size on the wire in bytes (payload + header).
    pub size_bytes: u32,
    /// Virtual flow ID: `hash(5-tuple) mod num_vfids`, computed once at the
    /// sender so every switch sees the same value (§3.3).
    pub vfid: u32,
    /// Set by the sender NIC on the first packet of a flow so switches can
    /// steer it to the high-priority queue (§3.7).
    pub first_of_flow: bool,
    /// ECN congestion-experienced mark set by switches when the egress queue
    /// exceeds the marking threshold.
    pub ecn_ce: bool,
    /// True for ACK/CNP-class packets that ride the strict-priority control
    /// queue at switches.
    pub control_priority: bool,
    /// HPCC in-band telemetry accumulated hop by hop (empty unless INT is
    /// enabled). For ACKs this is the echo of the data packet's telemetry.
    /// Stored inline ([`IntPath`]) so the per-packet path never allocates.
    pub int: IntPath,
    /// What the packet is.
    pub kind: PacketKind,
}

/// Conventional wire size of an ACK/CNP/NACK frame.
pub const ACK_SIZE_BYTES: u32 = 64;
/// Conventional wire size of a PFC pause frame.
pub const PFC_FRAME_BYTES: u32 = 64;

impl Packet {
    /// Builds a data packet.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        size_bytes: u32,
        vfid: u32,
        first_of_flow: bool,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq,
            size_bytes,
            vfid,
            first_of_flow,
            ecn_ce: false,
            control_priority: false,
            int: IntPath::new(),
            kind: PacketKind::Data,
        }
    }

    /// Builds an ACK (or NACK when `is_nack`) from receiver `src` back to
    /// sender `dst`.
    pub fn ack(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        cumulative_seq: u64,
        is_nack: bool,
        ecn_echo: bool,
        int: IntPath,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: cumulative_seq,
            size_bytes: ACK_SIZE_BYTES,
            vfid: 0,
            first_of_flow: false,
            ecn_ce: false,
            control_priority: true,
            int,
            kind: PacketKind::Ack {
                cumulative_seq,
                is_nack,
                ecn_echo,
            },
        }
    }

    /// Builds a DCQCN congestion notification packet from receiver `src` to
    /// sender `dst`.
    pub fn cnp(flow: FlowId, src: NodeId, dst: NodeId) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: 0,
            size_bytes: ACK_SIZE_BYTES,
            vfid: 0,
            first_of_flow: false,
            ecn_ce: false,
            control_priority: true,
            int: IntPath::new(),
            kind: PacketKind::Cnp,
        }
    }

    /// Builds a PFC pause/resume frame originated by `src` toward the
    /// adjacent node `dst`.
    pub fn pfc(src: NodeId, dst: NodeId, pause: bool) -> Self {
        Packet {
            flow: FlowId(u32::MAX),
            src,
            dst,
            seq: 0,
            size_bytes: PFC_FRAME_BYTES,
            vfid: 0,
            first_of_flow: false,
            ecn_ce: false,
            control_priority: true,
            int: IntPath::new(),
            kind: PacketKind::PfcPause { pause },
        }
    }

    /// Builds a BFC flow-pause frame originated by `src` toward the adjacent
    /// upstream node `dst`.
    pub fn flow_pause(src: NodeId, dst: NodeId, frame: PauseFrame) -> Self {
        let size = frame.size_bytes() as u32;
        Packet {
            flow: FlowId(u32::MAX),
            src,
            dst,
            seq: 0,
            size_bytes: size,
            vfid: 0,
            first_of_flow: false,
            ecn_ce: false,
            control_priority: true,
            int: IntPath::new(),
            kind: PacketKind::FlowPause {
                frame: Box::new(frame),
            },
        }
    }

    /// True for application data.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }

    /// True for link-local control frames (PFC / BFC pause) that are delivered
    /// out of band and never queued behind data.
    pub fn is_link_control(&self) -> bool {
        matches!(
            self.kind,
            PacketKind::PfcPause { .. } | PacketKind::FlowPause { .. }
        )
    }

    /// Serializes the full packet (all fields, kind included) for
    /// snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u32(self.flow.0);
        w.put_u32(self.src.0);
        w.put_u32(self.dst.0);
        w.put_u64(self.seq);
        w.put_u32(self.size_bytes);
        w.put_u32(self.vfid);
        w.put_bool(self.first_of_flow);
        w.put_bool(self.ecn_ce);
        w.put_bool(self.control_priority);
        self.int.save_state(w);
        match &self.kind {
            PacketKind::Data => w.put_u8(0),
            PacketKind::Ack {
                cumulative_seq,
                is_nack,
                ecn_echo,
            } => {
                w.put_u8(1);
                w.put_u64(*cumulative_seq);
                w.put_bool(*is_nack);
                w.put_bool(*ecn_echo);
            }
            PacketKind::Cnp => w.put_u8(2),
            PacketKind::PfcPause { pause } => {
                w.put_u8(3);
                w.put_bool(*pause);
            }
            PacketKind::FlowPause { frame } => {
                w.put_u8(4);
                frame.save_state(w);
            }
        }
    }

    /// Rebuilds a packet from [`Packet::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let flow = FlowId(r.get_u32()?);
        let src = NodeId(r.get_u32()?);
        let dst = NodeId(r.get_u32()?);
        let seq = r.get_u64()?;
        let size_bytes = r.get_u32()?;
        let vfid = r.get_u32()?;
        let first_of_flow = r.get_bool()?;
        let ecn_ce = r.get_bool()?;
        let control_priority = r.get_bool()?;
        let int = IntPath::restore_state(r)?;
        let kind = match r.get_u8()? {
            0 => PacketKind::Data,
            1 => PacketKind::Ack {
                cumulative_seq: r.get_u64()?,
                is_nack: r.get_bool()?,
                ecn_echo: r.get_bool()?,
            },
            2 => PacketKind::Cnp,
            3 => PacketKind::PfcPause {
                pause: r.get_bool()?,
            },
            4 => PacketKind::FlowPause {
                frame: Box::new(PauseFrame::restore_state(r)?),
            },
            _ => return Err(SnapError::Corrupt("unknown packet kind tag")),
        };
        Ok(Packet {
            flow,
            src,
            dst,
            seq,
            size_bytes,
            vfid,
            first_of_flow,
            ecn_ce,
            control_priority,
            int,
            kind,
        })
    }
}

/// Computes the stable 64-bit hash of a flow's 5-tuple. The evaluation
/// identifies flows by their dense [`FlowId`]; mixing it with a network-wide
/// salt stands in for hashing the real 5-tuple, and every switch derives the
/// same value.
pub fn flow_tuple_hash(flow: FlowId, salt: u64) -> u64 {
    mix64(flow.0 as u64 ^ salt.rotate_left(17))
}

/// Maps a flow's 5-tuple hash into the VFID space of size `num_vfids`.
pub fn vfid_for_flow(flow: FlowId, salt: u64, num_vfids: u32) -> u32 {
    debug_assert!(num_vfids > 0);
    (flow_tuple_hash(flow, salt) % num_vfids as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_frame_membership() {
        let mut f = PauseFrame::new(128, 4);
        assert!(f.is_empty());
        f.insert(42);
        f.insert(1000);
        assert!(f.contains(42));
        assert!(f.contains(1000));
        assert!(!f.is_empty());
        // With a 1024-bit filter and 8 set bits, an arbitrary other VFID is
        // overwhelmingly unlikely to be a false positive.
        let fp = (0..2000u32)
            .filter(|v| ![42, 1000].contains(v) && f.contains(*v))
            .count();
        assert_eq!(fp, 0);
    }

    #[test]
    fn pause_frame_popcount_counts_distinct_bits() {
        let mut f = PauseFrame::new(16, 4);
        f.insert(7);
        assert!(f.popcount() <= 4);
        assert!(f.popcount() >= 1);
    }

    #[test]
    fn tiny_filter_has_false_positives_eventually() {
        // A 16-byte filter (128 bits) with many inserted flows must produce
        // false positives — this is the degradation Fig. 14 studies.
        let mut f = PauseFrame::new(16, 4);
        for v in 0..60 {
            f.insert(v);
        }
        let fp = (1000..4000u32).filter(|v| f.contains(*v)).count();
        assert!(fp > 0, "expected some false positives in a saturated filter");
    }

    #[test]
    fn bit_positions_are_deterministic() {
        let a = PauseFrame::bit_position(5, 0, 1024);
        let b = PauseFrame::bit_position(5, 0, 1024);
        assert_eq!(a, b);
        assert!(a < 1024);
    }

    #[test]
    fn constructors_set_expected_fields() {
        let d = Packet::data(FlowId(1), NodeId(2), NodeId(3), 4, 1000, 77, true);
        assert!(d.is_data());
        assert!(!d.is_link_control());
        assert!(d.first_of_flow);
        assert_eq!(d.size_bytes, 1000);

        let a = Packet::ack(FlowId(1), NodeId(3), NodeId(2), 5, false, true, IntPath::new());
        assert!(a.control_priority);
        assert_eq!(a.size_bytes, ACK_SIZE_BYTES);
        match a.kind {
            PacketKind::Ack {
                cumulative_seq,
                is_nack,
                ecn_echo,
            } => {
                assert_eq!(cumulative_seq, 5);
                assert!(!is_nack);
                assert!(ecn_echo);
            }
            _ => panic!("not an ack"),
        }

        let p = Packet::pfc(NodeId(1), NodeId(0), true);
        assert!(p.is_link_control());
        let f = Packet::flow_pause(NodeId(1), NodeId(0), PauseFrame::new(128, 4));
        assert!(f.is_link_control());
        assert_eq!(f.size_bytes, 128);
        let c = Packet::cnp(FlowId(9), NodeId(3), NodeId(2));
        assert!(c.control_priority);
    }

    #[test]
    fn vfid_is_stable_and_in_range() {
        for flow in 0..1000u32 {
            let v1 = vfid_for_flow(FlowId(flow), 0xabc, 16384);
            let v2 = vfid_for_flow(FlowId(flow), 0xabc, 16384);
            assert_eq!(v1, v2);
            assert!(v1 < 16384);
        }
        // Different salts give (almost surely) different assignments.
        assert_ne!(
            (0..64u32).map(|f| vfid_for_flow(FlowId(f), 1, 1 << 20)).collect::<Vec<_>>(),
            (0..64u32).map(|f| vfid_for_flow(FlowId(f), 2, 1 << 20)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn small_vfid_space_collides() {
        // With 1024 VFIDs and 4096 flows there must be collisions (Fig. 13).
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for f in 0..4096u32 {
            if !seen.insert(vfid_for_flow(FlowId(f), 7, 1024)) {
                collisions += 1;
            }
        }
        assert!(collisions > 0);
    }
}
