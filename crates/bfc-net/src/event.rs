//! The global event vocabulary shared by switches, hosts and the simulation
//! driver.
//!
//! Every component schedules follow-up work by handing a [`NetEvent`] to a
//! [`NetSink`] — the serial engine's [`bfc_sim::EventQueue`] or the sharded
//! engine's boundary-routing wrapper. The driver (in `bfc-experiments`) owns
//! the dispatch loop: it pops events in time order and routes them to the
//! switch, host or metrics collector they belong to.
//!
//! Every scheduled event carries its [`NetEvent::canon_rank`]: a total order
//! on *simultaneous* events derived from the event's content rather than
//! from scheduling order. See that method for the determinism argument.

use bfc_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use bfc_sim::{EventQueue, SimTime};

use crate::packet::Packet;
use crate::types::{FlowId, NodeId};

/// Host-side timers used by the transport layer (`bfc-transport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportTimer {
    /// Go-Back-N retransmission timeout check for one flow.
    Retransmit(FlowId),
    /// DCQCN rate-increase timer for one flow.
    RateIncrease(FlowId),
    /// DCQCN alpha-update timer for one flow.
    AlphaUpdate(FlowId),
    /// The NIC asked to be woken up when a pacing gap elapses.
    NicWakeup,
}

/// A simulation event.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// The last bit of `packet` arrives at `node` on its local ingress `port`.
    PacketArrive {
        /// Receiving node.
        node: NodeId,
        /// Local ingress port index at the receiving node.
        port: u32,
        /// The packet.
        packet: Packet,
    },
    /// The egress at (`node`, `port`) finished serializing its current packet
    /// and may start the next one.
    TxComplete {
        /// Transmitting node.
        node: NodeId,
        /// Local egress port index.
        port: u32,
    },
    /// Periodic BFC pause-frame emission opportunity for ingress `port` of
    /// switch `node`.
    PauseFrameTimer {
        /// Switch owning the timer.
        node: NodeId,
        /// Local ingress port index the pause frame protects.
        port: u32,
    },
    /// A host-side transport timer fired.
    HostTimer {
        /// Host owning the timer.
        node: NodeId,
        /// Which timer fired.
        timer: TransportTimer,
    },
    /// The `index`-th flow of the experiment trace starts at its sender.
    FlowArrival {
        /// Index into the trace.
        index: usize,
    },
    /// A flow finished: its last data byte arrived at the receiver. Emitted by
    /// the receiving host; consumed by the metrics collector.
    FlowCompleted {
        /// The finished flow.
        flow: FlowId,
    },
    /// Periodic metrics sampling tick (buffer occupancy, utilization).
    Sample,
    /// The `index`-th event of the experiment's fault schedule fires: a link
    /// goes down/up or changes rate, and routing re-converges. Consumed by
    /// the driver, which owns the live link state.
    NetworkDynamics {
        /// Index into the experiment's `FaultSchedule`.
        index: usize,
    },
}

impl NetEvent {
    /// The node this event should be dispatched to, if it targets a node.
    pub fn target_node(&self) -> Option<NodeId> {
        match self {
            NetEvent::PacketArrive { node, .. }
            | NetEvent::TxComplete { node, .. }
            | NetEvent::PauseFrameTimer { node, .. }
            | NetEvent::HostTimer { node, .. } => Some(*node),
            NetEvent::FlowArrival { .. }
            | NetEvent::FlowCompleted { .. }
            | NetEvent::Sample
            | NetEvent::NetworkDynamics { .. } => None,
        }
    }

    /// Canonical rank: a deterministic total order on **simultaneous**
    /// events, derived from the event's content only.
    ///
    /// The engines order events by `(time, rank, push order)`. For sharded
    /// execution to reproduce serial results bit for bit, the order of two
    /// simultaneous events must not depend on which engine interleaved their
    /// pushes — so the rank must discriminate every pair of simultaneous
    /// events *except* pairs produced by one sequential stream, whose push
    /// order is the same in every engine. Concretely:
    ///
    /// * `PacketArrive`/`TxComplete`/`PauseFrameTimer` rank by `(node, port)`
    ///   — an `(ingress node, port)` pair identifies one cable, and all
    ///   deliveries on one cable are emitted by the single node on its far
    ///   end, in that node's (deterministic) processing order;
    /// * `HostTimer` ranks by the owning host — hosts only self-schedule
    ///   timers, again one stream per rank;
    /// * `FlowArrival`/`NetworkDynamics` rank by their schedule index and
    ///   `FlowCompleted` by its (unique) flow, so no two distinct events
    ///   share a rank at all;
    /// * event kinds are ranked against each other by the tag in the top
    ///   three bits, so e.g. a metrics `Sample` always observes the fabric
    ///   before any packet arriving at the same instant is processed.
    ///
    /// The rank packs into 32 bits (3-bit tag, 29-bit subkey) so the
    /// calendar queue's scheduling key stays at its tuned 24 bytes. That
    /// caps the addressable space at 2^19 nodes × 2^10 ports per node and
    /// 2^29 flows / trace entries — far beyond the paper's topologies.
    /// Truncation past those limits would be *consistent* between the
    /// serial and sharded engines (both hash the same event the same way),
    /// but could alias two distinct cables and void the same-stream-tie
    /// argument, so [`NetEvent::rank_layout_fits`] lets the sharded driver
    /// reject oversized topologies up front; the per-push debug asserts
    /// catch stray violations in tests without taxing the release hot path.
    pub fn canon_rank(&self) -> u32 {
        #[inline]
        fn key(tag: u32, sub: u64) -> u32 {
            debug_assert!(sub < 1 << 29, "rank subkey overflows the 29-bit layout");
            (tag << 29) | (sub as u32 & ((1 << 29) - 1))
        }
        #[inline]
        fn cable(node: NodeId, port: u32) -> u64 {
            debug_assert!(
                node.0 < 1 << 19 && port < 1 << 10,
                "node/port overflows the rank layout"
            );
            ((node.0 as u64) << 10) | port as u64
        }
        match self {
            NetEvent::FlowArrival { index } => key(0, *index as u64),
            NetEvent::Sample => key(1, 0),
            NetEvent::NetworkDynamics { index } => key(2, *index as u64),
            NetEvent::PacketArrive { node, port, .. } => key(3, cable(*node, *port)),
            NetEvent::TxComplete { node, port } => key(4, cable(*node, *port)),
            NetEvent::PauseFrameTimer { node, port } => key(5, cable(*node, *port)),
            NetEvent::HostTimer { node, .. } => key(6, cable(*node, 0)),
            NetEvent::FlowCompleted { flow } => key(7, flow.0 as u64),
        }
    }

    /// Whether `(nodes, max_ports_per_node, flows)` fit the packed rank
    /// layout without aliasing (see [`NetEvent::canon_rank`]). The sharded
    /// driver checks this once per run instead of asserting on every push.
    pub fn rank_layout_fits(nodes: usize, max_ports: usize, flows: usize) -> bool {
        nodes <= 1 << 19 && max_ports <= 1 << 10 && flows <= 1 << 29
    }

    /// Serializes the event for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            NetEvent::PacketArrive { node, port, packet } => {
                w.put_u8(0);
                w.put_u32(node.0);
                w.put_u32(*port);
                packet.save_state(w);
            }
            NetEvent::TxComplete { node, port } => {
                w.put_u8(1);
                w.put_u32(node.0);
                w.put_u32(*port);
            }
            NetEvent::PauseFrameTimer { node, port } => {
                w.put_u8(2);
                w.put_u32(node.0);
                w.put_u32(*port);
            }
            NetEvent::HostTimer { node, timer } => {
                w.put_u8(3);
                w.put_u32(node.0);
                match timer {
                    TransportTimer::Retransmit(f) => {
                        w.put_u8(0);
                        w.put_u32(f.0);
                    }
                    TransportTimer::RateIncrease(f) => {
                        w.put_u8(1);
                        w.put_u32(f.0);
                    }
                    TransportTimer::AlphaUpdate(f) => {
                        w.put_u8(2);
                        w.put_u32(f.0);
                    }
                    TransportTimer::NicWakeup => w.put_u8(3),
                }
            }
            NetEvent::FlowArrival { index } => {
                w.put_u8(4);
                w.put_usize(*index);
            }
            NetEvent::FlowCompleted { flow } => {
                w.put_u8(5);
                w.put_u32(flow.0);
            }
            NetEvent::Sample => w.put_u8(6),
            NetEvent::NetworkDynamics { index } => {
                w.put_u8(7);
                w.put_usize(*index);
            }
        }
    }

    /// Rebuilds an event from [`NetEvent::save_state`] output.
    pub fn restore_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => NetEvent::PacketArrive {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
                packet: Packet::restore_state(r)?,
            },
            1 => NetEvent::TxComplete {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
            },
            2 => NetEvent::PauseFrameTimer {
                node: NodeId(r.get_u32()?),
                port: r.get_u32()?,
            },
            3 => {
                let node = NodeId(r.get_u32()?);
                let timer = match r.get_u8()? {
                    0 => TransportTimer::Retransmit(FlowId(r.get_u32()?)),
                    1 => TransportTimer::RateIncrease(FlowId(r.get_u32()?)),
                    2 => TransportTimer::AlphaUpdate(FlowId(r.get_u32()?)),
                    3 => TransportTimer::NicWakeup,
                    _ => return Err(SnapError::Corrupt("unknown transport timer tag")),
                };
                NetEvent::HostTimer { node, timer }
            }
            4 => NetEvent::FlowArrival {
                index: r.get_usize()?,
            },
            5 => NetEvent::FlowCompleted {
                flow: FlowId(r.get_u32()?),
            },
            6 => NetEvent::Sample,
            7 => NetEvent::NetworkDynamics {
                index: r.get_usize()?,
            },
            _ => return Err(SnapError::Corrupt("unknown event tag")),
        })
    }
}

/// Where network components schedule their follow-up events.
///
/// The serial engine passes the global [`EventQueue`] directly; the sharded
/// engine passes a wrapper that routes events targeting another shard's
/// nodes into an epoch outbox instead. Every implementation must order
/// events by `(time, [`NetEvent::canon_rank`], emission order)` — going
/// through this trait (rather than `EventQueue::push`) is what guarantees
/// the rank is attached on every scheduling path.
pub trait NetSink {
    /// Schedules `event` at absolute time `time`.
    fn send(&mut self, time: SimTime, event: NetEvent);

    /// Observability hook riding the same seam: emission sites report
    /// structured [`TraceEvent`]s through the sink they already hold. The
    /// default ignores them — only the flight recorder's
    /// [`crate::trace::Recording`] wrapper overrides it, so tracing is
    /// zero-cost when off (the no-op inlines away, taking the event
    /// construction with it).
    #[inline]
    fn trace(&mut self, _at: SimTime, _event: crate::trace::TraceEvent) {}
}

impl NetSink for EventQueue<NetEvent> {
    #[inline]
    fn send(&mut self, time: SimTime, event: NetEvent) {
        let rank = event.canon_rank();
        self.push_ranked(time, rank, event);
    }
}

/// A [`NetSink`] that elides the canonical rank: every event is pushed with
/// rank 0, so the queue orders purely by `(time, push order)` — plain FIFO
/// among simultaneous events.
///
/// Only the **serial** engine may use this sink. With a single global queue,
/// push order is itself a deterministic total order, so the content-derived
/// rank adds nothing — this sink skips computing it on every push. (The
/// saving is real but small: `canon_rank` is a handful of shifts, measured
/// at ~1–2% of serial wall-clock, not the ~8% the optimization was sized
/// for; the rank turns out to live in `Key` padding, so eliding it shrinks
/// nothing.) The sharded engine must keep ranked keys: its per-shard push
/// orders depend on the shard count, and only the content-derived rank
/// makes them collapse back to one canonical order.
///
/// FIFO order and ranked order may disagree on *simultaneous* events from
/// different streams; `tests/determinism.rs` pins the experiment-level
/// results as bit-identical between the two serial modes.
pub struct FifoSink<'a>(pub &'a mut EventQueue<NetEvent>);

impl NetSink for FifoSink<'_> {
    #[inline]
    fn send(&mut self, time: SimTime, event: NetEvent) {
        self.0.push(time, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_ranks_are_distinct_across_kinds_and_cables() {
        let arrive = |node: u32, port: u32| NetEvent::PacketArrive {
            node: NodeId(node),
            port,
            packet: Packet::pfc(NodeId(0), NodeId(node), true),
        };
        // Different cables, different ranks; same cable, same rank.
        assert_ne!(arrive(1, 0).canon_rank(), arrive(1, 1).canon_rank());
        assert_ne!(arrive(1, 0).canon_rank(), arrive(2, 0).canon_rank());
        assert_eq!(arrive(1, 2).canon_rank(), arrive(1, 2).canon_rank());
        // Kind tags separate simultaneous events on the same cable, and the
        // cross-kind order puts samples before packet processing.
        let tx = NetEvent::TxComplete { node: NodeId(1), port: 0 };
        assert_ne!(arrive(1, 0).canon_rank(), tx.canon_rank());
        assert!(NetEvent::Sample.canon_rank() < arrive(0, 0).canon_rank());
        assert!(
            NetEvent::FlowArrival { index: (1 << 29) - 1 }.canon_rank()
                < NetEvent::Sample.canon_rank()
        );
        assert_ne!(
            NetEvent::FlowCompleted { flow: FlowId(7) }.canon_rank(),
            NetEvent::FlowCompleted { flow: FlowId(8) }.canon_rank()
        );
    }

    #[test]
    fn sink_attaches_the_canonical_rank() {
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let t = SimTime::from_nanos(10);
        // Pushed in "wrong" order; the rank restores the canonical one.
        q.send(t, NetEvent::TxComplete { node: NodeId(1), port: 0 });
        q.send(t, NetEvent::Sample);
        q.send(t, NetEvent::FlowArrival { index: 0 });
        let kinds: Vec<u8> = std::iter::from_fn(|| q.pop()).map(|(_, e)| match e {
            NetEvent::FlowArrival { .. } => 0,
            NetEvent::Sample => 1,
            NetEvent::TxComplete { .. } => 2,
            _ => 9,
        })
        .collect();
        assert_eq!(kinds, vec![0, 1, 2]);
    }

    #[test]
    fn target_node_extraction() {
        let e = NetEvent::TxComplete {
            node: NodeId(4),
            port: 1,
        };
        assert_eq!(e.target_node(), Some(NodeId(4)));
        assert_eq!(NetEvent::Sample.target_node(), None);
        assert_eq!(NetEvent::FlowArrival { index: 3 }.target_node(), None);
    }
}
