//! The global event vocabulary shared by switches, hosts and the simulation
//! driver.
//!
//! Every component schedules follow-up work by pushing a [`NetEvent`] into the
//! shared [`bfc_sim::EventQueue`]. The driver (in `bfc-experiments`) owns the
//! dispatch loop: it pops events in time order and routes them to the switch,
//! host or metrics collector they belong to.

use crate::packet::Packet;
use crate::types::{FlowId, NodeId};

/// Host-side timers used by the transport layer (`bfc-transport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportTimer {
    /// Go-Back-N retransmission timeout check for one flow.
    Retransmit(FlowId),
    /// DCQCN rate-increase timer for one flow.
    RateIncrease(FlowId),
    /// DCQCN alpha-update timer for one flow.
    AlphaUpdate(FlowId),
    /// The NIC asked to be woken up when a pacing gap elapses.
    NicWakeup,
}

/// A simulation event.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// The last bit of `packet` arrives at `node` on its local ingress `port`.
    PacketArrive {
        /// Receiving node.
        node: NodeId,
        /// Local ingress port index at the receiving node.
        port: u32,
        /// The packet.
        packet: Packet,
    },
    /// The egress at (`node`, `port`) finished serializing its current packet
    /// and may start the next one.
    TxComplete {
        /// Transmitting node.
        node: NodeId,
        /// Local egress port index.
        port: u32,
    },
    /// Periodic BFC pause-frame emission opportunity for ingress `port` of
    /// switch `node`.
    PauseFrameTimer {
        /// Switch owning the timer.
        node: NodeId,
        /// Local ingress port index the pause frame protects.
        port: u32,
    },
    /// A host-side transport timer fired.
    HostTimer {
        /// Host owning the timer.
        node: NodeId,
        /// Which timer fired.
        timer: TransportTimer,
    },
    /// The `index`-th flow of the experiment trace starts at its sender.
    FlowArrival {
        /// Index into the trace.
        index: usize,
    },
    /// A flow finished: its last data byte arrived at the receiver. Emitted by
    /// the receiving host; consumed by the metrics collector.
    FlowCompleted {
        /// The finished flow.
        flow: FlowId,
    },
    /// Periodic metrics sampling tick (buffer occupancy, utilization).
    Sample,
    /// The `index`-th event of the experiment's fault schedule fires: a link
    /// goes down/up or changes rate, and routing re-converges. Consumed by
    /// the driver, which owns the live link state.
    NetworkDynamics {
        /// Index into the experiment's `FaultSchedule`.
        index: usize,
    },
}

impl NetEvent {
    /// The node this event should be dispatched to, if it targets a node.
    pub fn target_node(&self) -> Option<NodeId> {
        match self {
            NetEvent::PacketArrive { node, .. }
            | NetEvent::TxComplete { node, .. }
            | NetEvent::PauseFrameTimer { node, .. }
            | NetEvent::HostTimer { node, .. } => Some(*node),
            NetEvent::FlowArrival { .. }
            | NetEvent::FlowCompleted { .. }
            | NetEvent::Sample
            | NetEvent::NetworkDynamics { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_node_extraction() {
        let e = NetEvent::TxComplete {
            node: NodeId(4),
            port: 1,
        };
        assert_eq!(e.target_node(), Some(NodeId(4)));
        assert_eq!(NetEvent::Sample.target_node(), None);
        assert_eq!(NetEvent::FlowArrival { index: 3 }.target_node(), None);
    }
}
