//! `bfc-testkit` property for `bfc-transport`: Go-Back-N delivers every byte
//! exactly once, in order, under randomized loss patterns.
//!
//! Two hosts are wired back to back (no switch in between) and the test
//! harness plays packet carrier: every data packet and every ACK consults a
//! generated loss pattern before delivery. Once the pattern is exhausted the
//! link becomes lossless, so Go-Back-N must eventually finish the flow —
//! every retransmission driven by NACKs and the retransmit timer.
//!
//! On failure the runner prints the per-case seed; rerun exactly that case
//! with `BFC_TESTKIT_SEED=<seed> cargo test <property_name>`.

use backpressure_flow_control::net::event::NetEvent;
use backpressure_flow_control::net::packet::PacketKind;
use backpressure_flow_control::net::types::{FlowId, NodeId};
use backpressure_flow_control::net::Link;
use backpressure_flow_control::sim::{EventQueue, SimDuration, SimTime};
use backpressure_flow_control::transport::{FlowSpec, Host, HostConfig};
use bfc_testkit::{check, int_range, pair, vec_of, Config};

const MTU: u32 = 1_000;
const SENDER: NodeId = NodeId(0);
const RECEIVER: NodeId = NodeId(1);

/// Outcome of one lossy Go-Back-N session.
struct SessionReport {
    delivered_bytes: u64,
    completions: u64,
    data_drops: usize,
    ack_drops: usize,
    cumulative_acks: Vec<u64>,
}

/// Runs one flow of `size_bytes` from SENDER to RECEIVER, dropping the
/// `i`-th data packet when `data_loss[i]` and the `i`-th ACK-class packet
/// when `ack_loss[i]` (losses beyond the pattern length never happen).
fn run_lossy_session(size_bytes: u64, data_loss: &[bool], ack_loss: &[bool]) -> SessionReport {
    let link = Link::datacenter_default();
    let config = HostConfig::bfc(MTU, SimDuration::from_micros(8));
    let mut sender = Host::new(SENDER, link, (RECEIVER, 0), config);
    let mut receiver = Host::new(RECEIVER, link, (SENDER, 0), config);

    let spec = FlowSpec {
        flow: FlowId(1),
        src: SENDER,
        dst: RECEIVER,
        size_bytes,
        vfid: 1,
    };
    let mut events: EventQueue<NetEvent> = EventQueue::new();
    receiver.expect_flow(spec);
    sender.start_flow(SimTime::ZERO, spec, &mut events);

    let mut report = SessionReport {
        delivered_bytes: 0,
        completions: 0,
        data_drops: 0,
        ack_drops: 0,
        cumulative_acks: Vec::new(),
    };
    let (mut data_seen, mut ack_seen) = (0usize, 0usize);
    let mut steps = 0u64;
    while let Some((now, event)) = events.pop() {
        steps += 1;
        assert!(
            steps < 2_000_000,
            "session did not converge: {} of {} bytes delivered",
            report.delivered_bytes,
            size_bytes
        );
        match event {
            NetEvent::PacketArrive { node, packet, .. } => {
                let drop = if packet.is_data() {
                    let drop = data_loss.get(data_seen).copied().unwrap_or(false);
                    data_seen += 1;
                    report.data_drops += drop as usize;
                    drop
                } else {
                    if let PacketKind::Ack { cumulative_seq, .. } = packet.kind {
                        report.cumulative_acks.push(cumulative_seq);
                    }
                    let drop = ack_loss.get(ack_seen).copied().unwrap_or(false);
                    ack_seen += 1;
                    report.ack_drops += drop as usize;
                    drop
                };
                if drop {
                    continue;
                }
                if node == RECEIVER {
                    receiver.handle_packet(now, packet, &mut events);
                } else {
                    sender.handle_packet(now, packet, &mut events);
                }
            }
            NetEvent::TxComplete { node, .. } => {
                if node == RECEIVER {
                    receiver.handle_tx_complete(now, &mut events);
                } else {
                    sender.handle_tx_complete(now, &mut events);
                }
            }
            NetEvent::HostTimer { node, timer } => {
                // Stop re-arming timers once the transfer is fully done,
                // otherwise the periodic retransmit timer runs forever.
                if report.completions > 0 && sender.active_sender_flows() == 0 {
                    continue;
                }
                if node == RECEIVER {
                    receiver.handle_timer(now, timer, &mut events);
                } else {
                    sender.handle_timer(now, timer, &mut events);
                }
            }
            NetEvent::FlowCompleted { flow } => {
                assert_eq!(flow, FlowId(1));
                report.completions += 1;
            }
            _ => {}
        }
    }
    report.delivered_bytes = receiver.counters().rx_data_bytes;
    report
}

#[test]
fn go_back_n_delivers_every_byte_exactly_once_under_loss() {
    // (flow size in packets, loss die rolls): a roll of 0 drops a data
    // packet, a roll of 1 drops an ACK — 25% data loss, 25% ACK loss over
    // the pattern's reach, lossless afterwards.
    let gen = pair(
        int_range(1u64..60),
        vec_of(int_range(0u64..4), 1..120),
    );
    check(
        "go_back_n_delivers_every_byte_exactly_once_under_loss",
        Config::from_env().with_cases(48),
        gen,
        |&(packets, ref rolls)| {
            let size_bytes = packets * MTU as u64 - 137.min(packets * MTU as u64 - 1);
            let data_loss: Vec<bool> = rolls.iter().map(|&r| r == 0).collect();
            let ack_loss: Vec<bool> = rolls.iter().map(|&r| r == 1).collect();
            let report = run_lossy_session(size_bytes, &data_loss, &ack_loss);

            // Every byte arrives exactly once (the receiver only counts
            // in-order first deliveries) and completion fires exactly once.
            assert_eq!(
                report.delivered_bytes, size_bytes,
                "every byte must be delivered exactly once"
            );
            assert_eq!(report.completions, 1, "completion must fire exactly once");

            // In-order delivery: the receiver's expected sequence number is
            // monotone, so the cumulative acknowledgement stream it emits
            // never decreases (the carrier preserves order and drops are
            // not reorderings), and its maximum covers the whole flow.
            for w in report.cumulative_acks.windows(2) {
                assert!(
                    w[1] >= w[0],
                    "cumulative ACKs must be non-decreasing: {} then {}",
                    w[0],
                    w[1]
                );
            }
            let total_packets = size_bytes.div_ceil(MTU as u64);
            assert_eq!(
                report.cumulative_acks.last().copied(),
                Some(total_packets),
                "the final ACK covers the flow"
            );
        },
    );
}

#[test]
fn go_back_n_is_exact_on_a_lossless_link() {
    let report = run_lossy_session(10 * MTU as u64, &[], &[]);
    assert_eq!(report.delivered_bytes, 10 * MTU as u64);
    assert_eq!(report.completions, 1);
    assert_eq!(report.data_drops, 0);
    // Without loss the cumulative ACK sequence is strictly increasing.
    for w in report.cumulative_acks.windows(2) {
        assert!(w[1] > w[0], "lossless ACKs must be strictly increasing");
    }
}
