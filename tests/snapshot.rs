//! Checkpoint/restore acceptance tests.
//!
//! 1. The bit-identity contract: for every paper-lineup scheme ×
//!    (synthetic workload, CSV trace replay, link-fault scenario), a run
//!    snapshotted mid-flight and resumed produces an `ExperimentResult`
//!    identical field-for-field (floats by bits) to the uninterrupted run,
//!    for the serial engine and for the sharded engine at 1, 2 and 4 shards.
//! 2. Snapshot-instant coverage: the cut can land before the first event,
//!    anywhere in the middle, or after the last event.
//! 3. Robustness: corrupted, truncated, version-skewed or mismatched
//!    snapshots are rejected with the right `SnapError`, never a wrong
//!    result.
//! 4. Streaming ingest: serving a finished trace through `CsvTail` with an
//!    uncontended inflight cap reproduces the batch run bit-identically,
//!    and a tight cap still completes every admitted flow.

use backpressure_flow_control::experiments::service::{
    resume_experiment, serve_experiment, snapshot_experiment,
};
use backpressure_flow_control::experiments::{
    run_experiment, run_experiment_sharded, ExperimentConfig, ExperimentResult, ReplayTrace,
    ScenarioSpec, Scheme,
};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams, Topology};
use backpressure_flow_control::sim::{SimDuration, SimTime, SnapError};
use backpressure_flow_control::workloads::{
    export_csv, synthesize, CsvTail, TraceFlow, TraceParams, Workload,
};

const WINDOW: SimDuration = SimDuration::from_micros(120);

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

fn synthetic_trace(topo: &Topology, seed: u64) -> Vec<TraceFlow> {
    synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.5, WINDOW, seed),
    )
}

/// Field-by-field bit-identity, including every float compared by its bits.
fn assert_identical(label: &str, a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.scheme, b.scheme, "{label}: scheme");
    assert_eq!(a.fct, b.fct, "{label}: FCT summary");
    assert_eq!(a.records, b.records, "{label}: per-flow records");
    assert_eq!(
        a.occupancy.samples(),
        b.occupancy.samples(),
        "{label}: occupancy series"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&a.peak_queue_samples),
        bits(&b.peak_queue_samples),
        "{label}: peak queue series"
    );
    assert_eq!(
        bits(&a.occupied_queue_samples),
        bits(&b.occupied_queue_samples),
        "{label}: occupied queue series"
    );
    assert_eq!(
        a.utilization.to_bits(),
        b.utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(
        a.pfc_pause_fraction.to_bits(),
        b.pfc_pause_fraction.to_bits(),
        "{label}: PFC pause fraction"
    );
    assert_eq!(a.policy_stats, b.policy_stats, "{label}: policy stats");
    assert_eq!(a.drops, b.drops, "{label}: drops");
    assert_eq!(a.completed_flows, b.completed_flows, "{label}: completions");
    assert_eq!(a.total_flows, b.total_flows, "{label}: flow count");
    assert_eq!(a.end_time, b.end_time, "{label}: end time");
    assert_eq!(a.recovery, b.recovery, "{label}: recovery metrics");
}

/// Snapshot mid-run at each shard count, resume, and compare against the
/// uninterrupted run. The serial baseline doubles as the uninterrupted
/// sharded result: `tests/sharding.rs` proves the sharded engine equals the
/// serial one at every shard count, so one spot-check per call keeps the
/// chain honest without rerunning the whole cross product.
fn compare_resume(label: &str, topo: &Topology, trace: &[TraceFlow], config: &ExperimentConfig) {
    let uninterrupted = run_experiment(topo, trace, config);
    let at = SimTime::ZERO + us(60);
    for shards in [1usize, 2, 4] {
        let snap = snapshot_experiment(topo, trace, config, at, shards);
        let resumed = resume_experiment(topo, trace, config, &snap)
            .unwrap_or_else(|e| panic!("{label} @ {shards} shards: resume failed: {e}"));
        assert_identical(&format!("{label} @ {shards} shards"), &uninterrupted, &resumed);
    }
    let spot = run_experiment_sharded(topo, trace, config, 2);
    assert_identical(&format!("{label}: sharded baseline"), &uninterrupted, &spot);
}

/// Acceptance (synthetic): every paper-lineup scheme survives a mid-run
/// snapshot/resume bit-identically at 1/2/4 shards.
#[test]
fn paper_lineup_resumes_bit_identically_synthetic() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 23);
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let config = ExperimentConfig::new(scheme, WINDOW);
        compare_resume(&format!("synthetic/{name}"), &topo, &trace, &config);
    }
}

/// Acceptance (trace replay): the CSV round-trip path snapshots and resumes
/// bit-identically for every lineup scheme.
#[test]
fn paper_lineup_resumes_bit_identically_trace_replay() {
    let topo = fat_tree(FatTreeParams::tiny());
    let params = TraceParams {
        incast_fan_in: 6,
        incast_total_bytes: 300_000,
        ..TraceParams::google_with_incast(WINDOW, 31)
    };
    let trace = synthesize(&topo.hosts(), &params);
    let replay = ReplayTrace::from_csv_str(&export_csv(&trace)).expect("round trip");
    assert_eq!(replay.flows(), &trace[..]);
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let config = ExperimentConfig::new(scheme, WINDOW);
        compare_resume(&format!("replay/{name}"), &topo, replay.flows(), &config);
    }
}

/// Acceptance (fault scenario): a link failure with repair — including the
/// cut landing while the link is down, so restored routing tables must be
/// recomputed from degraded link-state — resumes bit-identically for every
/// lineup scheme.
#[test]
fn paper_lineup_resumes_bit_identically_under_faults() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 37);
    let schedule = ScenarioSpec::single_link_down_up("tor0", "spine0", us(50), us(100))
        .resolve(&topo)
        .expect("tiny topology has tor0/spine0");
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let config = ExperimentConfig::new(scheme, WINDOW).with_dynamics(schedule.clone());
        compare_resume(&format!("faults/{name}"), &topo, &trace, &config);
    }
}

/// Epoch batching × checkpoint/restore: with the sharded engine's adaptive
/// batching forced on or forced off, a mid-run cut still resumes
/// bit-identically at 1, 2 and 4 shards — and both modes land on the same
/// uninterrupted serial result. Batching only reschedules barriers; it must
/// never move an event or change what a snapshot captures.
#[test]
fn batched_epoch_runs_snapshot_resume_bit_identically_in_both_modes() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 47);
    for batching in [true, false] {
        let config = ExperimentConfig::new(Scheme::bfc(), WINDOW).with_epoch_batching(batching);
        compare_resume(&format!("batching={batching}/BFC"), &topo, &trace, &config);
    }
}

/// The cut can land anywhere: before the first event, at several points in
/// the middle, and after the last event, serially and sharded.
#[test]
fn snapshot_instant_can_be_anywhere_in_the_run() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 41);
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    let uninterrupted = run_experiment(&topo, &trace, &config);
    for at_us in [0u64, 1, 30, 90, 119, 100_000] {
        let at = SimTime::ZERO + us(at_us);
        for shards in [1usize, 2] {
            let snap = snapshot_experiment(&topo, &trace, &config, at, shards);
            let resumed = resume_experiment(&topo, &trace, &config, &snap)
                .unwrap_or_else(|e| panic!("at {at_us} us / {shards} shards: {e}"));
            assert_identical(
                &format!("cut at {at_us} us @ {shards} shards"),
                &uninterrupted,
                &resumed,
            );
        }
    }
}

/// Corrupted containers are rejected with precise errors, never decoded.
#[test]
fn damaged_snapshots_are_rejected() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 43);
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    let snap = snapshot_experiment(&topo, &trace, &config, SimTime::ZERO + us(60), 1);

    // A flipped payload byte fails the checksum.
    let mut flipped = snap.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(matches!(
        resume_experiment(&topo, &trace, &config, &flipped),
        Err(SnapError::BadChecksum)
    ));

    // A future format version is refused by number, not misdecoded.
    let mut versioned = snap.clone();
    versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        resume_experiment(&topo, &trace, &config, &versioned),
        Err(SnapError::BadVersion(99))
    ));

    // Wrong magic: not one of ours.
    let mut magicked = snap.clone();
    magicked[0] ^= 0xFF;
    assert!(matches!(
        resume_experiment(&topo, &trace, &config, &magicked),
        Err(SnapError::BadMagic)
    ));

    // Truncations at every interesting boundary read as short input.
    for cut in [0, 4, 12, 19, snap.len() - 9, snap.len() - 1] {
        assert!(
            matches!(
                resume_experiment(&topo, &trace, &config, &snap[..cut]),
                Err(SnapError::UnexpectedEof)
            ),
            "truncation to {cut} bytes must be UnexpectedEof"
        );
    }

    // An intact snapshot resumed against different inputs (here: another
    // seed, hence another trace/config fingerprint) is rejected loudly.
    let other = ExperimentConfig::new(Scheme::bfc(), WINDOW).with_seed(99);
    assert!(matches!(
        resume_experiment(&topo, &trace, &other, &snap),
        Err(SnapError::Corrupt(_))
    ));

    // And the undamaged snapshot still resumes fine afterwards.
    assert!(resume_experiment(&topo, &trace, &config, &snap).is_ok());
}

/// Streaming ingest: a finished trace served through `CsvTail` with an
/// uncontended cap is bit-identical to the batch run on the same flows, and
/// a tight cap still admits and completes everything.
#[test]
fn serving_a_finished_trace_matches_the_batch_run() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 47);
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    let batch = run_experiment(&topo, &trace, &config);

    let mut path = std::env::temp_dir();
    path.push(format!("bfc-snapshot-serve-{}.csv", std::process::id()));
    std::fs::write(&path, export_csv(&trace)).expect("write trace");

    // Cap >= trace length: admission never waits, so every flow keeps its
    // original start time and the run replays the batch schedule exactly.
    let mut tail = CsvTail::open(&path, false).expect("open");
    let wide = serve_experiment(&topo, &config, &mut tail, trace.len().max(1))
        .expect("serve with uncontended cap");
    assert_eq!(wide.admitted, trace.len());
    assert_identical("serve/uncontended", &batch, &wide.result);

    // A tight cap forces the backpressure path; timing may shift (arrivals
    // are clamped to the simulation's progress) but nothing is lost.
    let mut tail = CsvTail::open(&path, false).expect("open again");
    let tight = serve_experiment(&topo, &config, &mut tail, 4).expect("serve with tight cap");
    assert_eq!(tight.admitted, trace.len());
    assert_eq!(tight.result.total_flows, trace.len());
    assert_eq!(
        tight.result.completed_flows, tight.result.total_flows,
        "tight-cap serve must still complete every admitted flow"
    );
    let _ = std::fs::remove_file(&path);
}
