//! Observability acceptance tests.
//!
//! 1. The flight recorder is a pure observer: with tracing on or off, every
//!    `ExperimentResult` field (floats compared by bits) is identical for
//!    every paper-lineup scheme, serially and at 1/2/4 shards.
//! 2. The unified counter registry is engine-independent: serial and
//!    sharded runs expose the same series (engine internals excepted — the
//!    barrier/batch counters legitimately describe the engine that ran).
//! 3. Registry merge is exact: counters sum, gauges take the max, and the
//!    operation is order-independent.
//! 4. The trace container round-trips byte-stably and rejects damaged
//!    input (foreign magic, version skew, truncation, bit flips) exactly
//!    like snapshot files do.
//! 5. Counters survive snapshot/resume.
//! 6. The committed PFC-deadlock reproducer's flight trace carries the
//!    pause wait-for edges the safety report convicts on.

use backpressure_flow_control::experiments::{
    resume_experiment, run_experiment, run_experiment_sharded, snapshot_experiment,
    ExperimentConfig, ExperimentResult, Reproducer, Scheme,
};
use backpressure_flow_control::metrics::{percentile, MetricsRegistry};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::net::trace::{read_trace, write_trace, TraceFilter};
use backpressure_flow_control::sim::snapshot::SnapError;
use backpressure_flow_control::sim::{SimDuration, SimTime};
use backpressure_flow_control::workloads::{synthesize, TraceFlow, TraceParams, Workload};

const WINDOW: SimDuration = SimDuration::from_micros(120);

fn test_inputs() -> (backpressure_flow_control::net::Topology, Vec<TraceFlow>) {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.5, WINDOW, 41),
    );
    (topo, trace)
}

/// Field-by-field bit-identity of everything except the observability
/// artifacts themselves (the same contract `tests/sharding.rs` enforces).
fn assert_identical(label: &str, a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.scheme, b.scheme, "{label}: scheme");
    assert_eq!(a.fct, b.fct, "{label}: FCT summary");
    assert_eq!(a.records, b.records, "{label}: per-flow records");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&a.peak_queue_samples),
        bits(&b.peak_queue_samples),
        "{label}: peak queue series"
    );
    assert_eq!(
        a.utilization.to_bits(),
        b.utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(
        a.pfc_pause_fraction.to_bits(),
        b.pfc_pause_fraction.to_bits(),
        "{label}: PFC pause fraction"
    );
    assert_eq!(a.policy_stats, b.policy_stats, "{label}: policy stats");
    assert_eq!(a.drops, b.drops, "{label}: drops");
    assert_eq!(a.completed_flows, b.completed_flows, "{label}: completions");
    assert_eq!(a.total_flows, b.total_flows, "{label}: flow count");
    assert_eq!(a.end_time, b.end_time, "{label}: end time");
    assert_eq!(a.recovery, b.recovery, "{label}: recovery metrics");
    assert_eq!(a.safety, b.safety, "{label}: safety report");
}

/// The exposition text minus the `bfc_engine_*` families, which describe
/// the engine that ran (barriers, batches, overflow chains) and so may
/// legitimately differ between the serial and sharded engines.
fn expose_without_engine(r: &ExperimentResult) -> String {
    r.registry
        .expose()
        .lines()
        .filter(|l| !l.contains("bfc_engine_"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Acceptance: tracing on vs off is bit-identical for every lineup scheme,
/// serially and at 1/2/4 shards, and the registry matches across engines.
#[test]
fn tracing_is_a_pure_observer_for_every_scheme_and_engine() {
    let (topo, trace) = test_inputs();
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let off = ExperimentConfig::new(scheme.clone(), WINDOW);
        // Big enough that nothing is shed: with shedding, "last N per
        // shard" is not "last N overall", so the serial/sharded trace
        // comparison below only holds for complete rings.
        let on = ExperimentConfig::new(scheme, WINDOW).with_trace_capacity(1 << 21);

        let base = run_experiment(&topo, &trace, &off);
        assert!(base.flight.is_none(), "{name}: no recorder when off");
        let traced = run_experiment(&topo, &trace, &on);
        assert_identical(&format!("{name} serial on-vs-off"), &base, &traced);
        assert_eq!(
            base.registry.expose(),
            traced.registry.expose(),
            "{name}: registry must not see the recorder"
        );
        let flight = traced.flight.as_ref().expect("recorder was on");
        assert!(!flight.records.is_empty(), "{name}: events were recorded");
        assert_eq!(flight.dropped, 0, "{name}: ring must hold the whole run");

        for shards in [1usize, 2, 4] {
            let s_on = run_experiment_sharded(&topo, &trace, &on, shards);
            let s_off = run_experiment_sharded(&topo, &trace, &off, shards);
            let label = format!("{name} @ {shards} shards");
            assert_identical(&format!("{label} on-vs-serial"), &base, &s_on);
            assert_eq!(
                s_on.registry.expose(),
                s_off.registry.expose(),
                "{label}: registry on-vs-off"
            );
            assert_eq!(
                expose_without_engine(&base),
                expose_without_engine(&s_on),
                "{label}: serial and sharded runs must expose the same series"
            );
            // The merged trace is engine-independent too: canonical
            // (time, rank, seq) order makes the sharded trace equal the
            // serial one record-for-record.
            assert_eq!(
                traced.flight,
                s_on.flight,
                "{label}: merged trace differs from serial"
            );
            // So is the diff: same run at any shard count diverges nowhere.
            let serial_flight = traced.flight.as_ref().expect("recorder was on");
            let sharded_flight = s_on.flight.as_ref().expect("recorder was on");
            assert!(
                serial_flight.diff(sharded_flight).is_none(),
                "{label}: same-run traces must diff empty"
            );
            // Native histograms merge exactly: the sharded run's registry
            // carries bit-identical distributions (expose equality above
            // already covers the text; this pins the bucket vectors).
            for key in ["bfc_fct_slowdown_milli", "bfc_pause_duration_ns"] {
                assert_eq!(
                    base.registry.hist(key),
                    s_on.registry.hist(key),
                    "{label}: {key} must merge bit-identically"
                );
            }
        }
    }
}

/// `FlightTrace::diff` localizes a real divergence: two schemes over the
/// same inputs share a prefix (both traces start from the same seeded
/// events), then split; the report names the first diverging record and its
/// per-kind tails, and is index-symmetric.
#[test]
fn trace_diff_localizes_scheme_divergence() {
    let (topo, trace) = test_inputs();
    let on = |scheme| ExperimentConfig::new(scheme, WINDOW).with_trace_capacity(1 << 21);
    let a = run_experiment(&topo, &trace, &on(Scheme::bfc()));
    let flight_a = a.flight.expect("recorder was on");
    let b = run_experiment(&topo, &trace, &on(Scheme::Dcqcn { window: true, sfq: false }));
    let flight_b = b.flight.expect("recorder was on");

    let diff = flight_a.diff(&flight_b).expect("different schemes must diverge");
    assert!(
        diff.index < flight_a.records.len().min(flight_b.records.len()),
        "divergence is a real record, not a length mismatch"
    );
    let first_a = diff.first_a.as_ref().expect("record exists at the index");
    let first_b = diff.first_b.as_ref().expect("record exists at the index");
    assert_eq!(
        flight_a.records[..diff.index],
        flight_b.records[..diff.index],
        "everything before the divergence is a common prefix"
    );
    assert_ne!(
        (first_a.at, first_a.rank, &first_a.event),
        (first_b.at, first_b.rank, &first_b.event),
        "the named records actually differ"
    );
    assert!(!diff.kinds.is_empty(), "divergent tails have kind tallies");
    assert_eq!(diff.tail_a, flight_a.records.len() - diff.index);
    assert_eq!(diff.tail_b, flight_b.records.len() - diff.index);

    let reverse = flight_b.diff(&flight_a).expect("diff is symmetric");
    assert_eq!(diff.index, reverse.index, "divergence index is direction-free");
}

/// Record-time filtering is a pure observer too: results are bit-identical,
/// the kept records are exactly the admitted subsequence of the unfiltered
/// trace, and filtered events are not counted as ring drops.
#[test]
fn record_time_filter_prunes_without_perturbing() {
    let (topo, trace) = test_inputs();
    let unfiltered_config =
        ExperimentConfig::new(Scheme::bfc(), WINDOW).with_trace_capacity(1 << 21);
    let base = run_experiment(&topo, &trace, &unfiltered_config);
    let full = base.flight.as_ref().expect("recorder was on");

    // Kind 0 is `enqueue`; node 8 is the first ToR of the tiny fat-tree.
    let filter = TraceFilter::all()
        .with_kinds([0usize])
        .with_nodes([backpressure_flow_control::net::types::NodeId(8)]);
    let filtered_config = ExperimentConfig::new(Scheme::bfc(), WINDOW)
        .with_trace_capacity(1 << 21)
        .with_trace_filter(filter.clone());
    let run = run_experiment(&topo, &trace, &filtered_config);
    assert_identical("filter on-vs-off", &base, &run);
    let filtered = run.flight.expect("recorder was on");
    assert_eq!(filtered.dropped, 0, "filtered events are not ring drops");

    let want: Vec<_> = full
        .records
        .iter()
        .filter(|r| filter.admits(&r.event))
        .map(|r| (r.at, r.event.clone()))
        .collect();
    let got: Vec<_> = filtered
        .records
        .iter()
        .map(|r| (r.at, r.event.clone()))
        .collect();
    assert!(!got.is_empty(), "the filter admits some events in this run");
    assert_eq!(got, want, "kept records are the admitted subsequence");
}

/// The FCT slowdown histogram agrees with the exact per-flow records: same
/// population, and every bucket-quantile lands within one bucket width
/// (≤ 12.5% above) of the exact nearest-rank percentile from `fct.rs`.
#[test]
fn fct_histogram_quantiles_track_exact_percentiles() {
    let (topo, trace) = test_inputs();
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    let result = run_experiment(&topo, &trace, &config);
    let hist = result
        .registry
        .hist("bfc_fct_slowdown_milli")
        .expect("FCT histogram is always recorded");

    // Recompute the exact milli-slowdowns the hot path observed.
    let milli: Vec<u64> = result
        .records
        .iter()
        .filter(|r| !r.is_incast)
        .map(|r| {
            let fct = r.fct.as_picos() as u128;
            let ideal = r.ideal_fct.as_picos().max(1) as u128;
            (fct * 1000 / ideal).max(1000) as u64
        })
        .collect();
    assert!(!milli.is_empty(), "the run completes non-incast flows");
    assert_eq!(hist.count(), milli.len() as u64, "same population");
    assert_eq!(
        hist.sum(),
        milli.iter().map(|&v| v as u128).sum::<u128>(),
        "exact sum"
    );

    let values: Vec<f64> = milli.iter().map(|&v| v as f64).collect();
    for p in [50.0, 90.0, 99.0, 100.0] {
        let exact = percentile(&values, p).expect("non-empty") as u64;
        let est = hist.quantile(p / 100.0).expect("non-empty");
        assert!(
            est >= exact && est <= exact + exact / 8,
            "p{p}: bucket estimate {est} not within one bucket of exact {exact}"
        );
    }
}

#[test]
fn registry_merge_is_exact_and_order_independent() {
    let mut a = MetricsRegistry::new();
    a.add_counter("x_total", 1);
    a.add_counter("y_total", 2);
    a.set_gauge("g", 1.5);
    let mut b = MetricsRegistry::new();
    b.add_counter("y_total", 40);
    b.add_counter("z_total", 5);
    b.set_gauge("g", 0.5);
    b.set_gauge("h", 2.0);

    let mut ab = a.clone();
    ab.merge(&b);
    assert_eq!(ab.counter("x_total"), Some(1));
    assert_eq!(ab.counter("y_total"), Some(42), "counters sum");
    assert_eq!(ab.counter("z_total"), Some(5));
    assert_eq!(ab.gauge("g"), Some(1.5), "gauges take the max");
    assert_eq!(ab.gauge("h"), Some(2.0));

    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab.expose(), ba.expose(), "merge is order-independent");

    // Merging the empty registry is the identity, both ways.
    let mut with_empty = a.clone();
    with_empty.merge(&MetricsRegistry::new());
    assert_eq!(with_empty.expose(), a.expose());
    let mut from_empty = MetricsRegistry::new();
    from_empty.merge(&a);
    assert_eq!(from_empty.expose(), a.expose());
}

/// The container format: a write/read/write round trip is byte-stable, and
/// damaged containers are rejected, never misdecoded.
#[test]
fn trace_container_round_trips_and_rejects_damage() {
    let (topo, trace) = test_inputs();
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW).with_trace_capacity(96);
    let result = run_experiment(&topo, &trace, &config);
    let flight = result.flight.expect("recorder was on");
    assert!(!flight.records.is_empty());

    let label = "round trip \"quoted\" label";
    let blob = write_trace(label, &flight);
    let (label2, flight2) = read_trace(&blob).expect("own output reads back");
    assert_eq!(label2, label);
    assert_eq!(flight2, flight, "records and shed count survive");
    assert_eq!(
        write_trace(&label2, &flight2),
        blob,
        "re-serialization is byte-stable"
    );

    // Foreign magic.
    let mut wrong_magic = blob.clone();
    wrong_magic[0] ^= 0x20;
    assert_eq!(read_trace(&wrong_magic).unwrap_err(), SnapError::BadMagic);
    // Version skew is refused by number.
    let mut skewed = blob.clone();
    skewed[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(read_trace(&skewed).unwrap_err(), SnapError::BadVersion(99));
    // Truncation at every prefix.
    for n in 0..blob.len() {
        assert!(read_trace(&blob[..n]).is_err(), "prefix {n} accepted");
    }
    // Every single-byte corruption is rejected (checksummed container).
    for i in 0..blob.len() {
        let mut bad = blob.clone();
        bad[i] ^= 0x01;
        assert!(read_trace(&bad).is_err(), "flip at byte {i} accepted");
    }
    // Trailing garbage is not silently ignored.
    let mut padded = blob.clone();
    padded.push(0);
    assert!(read_trace(&padded).is_err(), "trailing byte accepted");
}

/// Counters ride the snapshot: an interrupted-and-resumed run exposes the
/// same registry as the uninterrupted one.
#[test]
fn counters_survive_snapshot_resume() {
    let (topo, trace) = test_inputs();
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    let mid = SimTime::ZERO + WINDOW / 2;

    let full = run_experiment(&topo, &trace, &config);
    let snap = snapshot_experiment(&topo, &trace, &config, mid, 1);
    let resumed = resume_experiment(&topo, &trace, &config, &snap).expect("snapshot resumes");
    assert_identical("serial resume", &full, &resumed);
    assert_eq!(
        full.registry.expose(),
        resumed.registry.expose(),
        "serial resume must reproduce every series, engine counters included"
    );

    let full2 = run_experiment_sharded(&topo, &trace, &config, 2);
    let snap2 = snapshot_experiment(&topo, &trace, &config, mid, 2);
    let resumed2 = resume_experiment(&topo, &trace, &config, &snap2).expect("snapshot resumes");
    assert_identical("sharded resume", &full2, &resumed2);
    assert_eq!(
        expose_without_engine(&full2),
        expose_without_engine(&resumed2),
        "sharded resume must reproduce every non-engine series"
    );

    // The native histograms ride the snapshot bit-for-bit, not just their
    // rendered text: bucket vectors, sums, and counts all survive.
    for key in ["bfc_fct_slowdown_milli", "bfc_pause_duration_ns"] {
        let want = full.registry.hist(key);
        assert!(want.is_some(), "{key} is always recorded");
        assert_eq!(want, resumed.registry.hist(key), "{key} serial resume");
        assert_eq!(want, full2.registry.hist(key), "{key} sharded merge");
        assert_eq!(want, resumed2.registry.hist(key), "{key} sharded resume");
    }
}

/// Acceptance: the committed PFC-deadlock reproducer convicts, and the
/// auto-dumpable flight trace carries the wait-for edges behind the
/// conviction — every consecutive pair of the first deadlock cycle is an
/// XOFF delivery in the trace, and the trace sees exactly the pause frames
/// the safety report counted.
#[test]
fn deadlock_reproducer_flight_trace_matches_safety_report() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/scenarios/pfc_deadlock_dcqcn_t1.scn"),
    )
    .expect("committed reproducer exists");
    let repro = Reproducer::parse(&text).expect("committed reproducer parses");
    let (topo, flows, config) = repro.materialize().expect("reproducer materializes");
    // A ring big enough to hold the whole run: nothing is shed, so the
    // trace must contain every pause frame the safety analysis saw.
    let config = config.with_trace_capacity(4_000_000);
    let result = run_experiment(&topo, &flows, &config);

    assert!(
        result.safety.deadlocks > 0,
        "the committed scenario must still deadlock"
    );
    let flight = result.flight.expect("recorder was on");
    assert_eq!(flight.dropped, 0, "ring was sized to hold the whole run");

    let edges = flight.pause_edges();
    let xoff: Vec<(u32, u32)> = edges
        .iter()
        .filter(|&&(_, _, _, pause)| pause)
        .map(|&(_, node, src, _)| (node.0, src.0))
        .collect();
    assert_eq!(
        xoff.len() as u64,
        result.safety.pause_frames,
        "trace and safety report must count the same pause frames"
    );

    let cycle = &result.safety.first_deadlock_cycle;
    assert!(cycle.len() >= 2, "a wait-for cycle has at least two members");
    for i in 0..cycle.len() {
        let a = cycle[i];
        let b = cycle[(i + 1) % cycle.len()];
        assert!(
            xoff.contains(&(a.0, b.0)),
            "cycle edge sw{} -> sw{} missing from the flight trace",
            a.0,
            b.0
        );
    }

    // The divergence profiler pinpoints where BFC escapes the deadlock: the
    // same inputs under BFC split from the DCQCN trace no later than the
    // first safety violation — the root cause precedes the symptom.
    let mut bfc_config = config;
    bfc_config.scheme = Scheme::bfc();
    let bfc_result = run_experiment(&topo, &flows, &bfc_config);
    assert_eq!(
        bfc_result.safety.deadlocks, 0,
        "BFC must survive the reproducer"
    );
    let bfc_flight = bfc_result.flight.expect("recorder was on");
    let diff = flight
        .diff(&bfc_flight)
        .expect("different schemes must diverge");
    let first_at = diff
        .first_a
        .as_ref()
        .expect("divergence is inside both traces")
        .at;
    let deadlock_at = result
        .safety
        .first_deadlock_at
        .expect("deadlocking run records when");
    assert!(
        first_at <= deadlock_at,
        "first divergence {first_at:?} must not trail the deadlock {deadlock_at:?}"
    );
}
