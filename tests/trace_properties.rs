//! Trace I/O and arrival-process properties (tier-1):
//!
//! 1. Any trace — synthesized or arbitrary, at picosecond start resolution —
//!    round-trips bit-exactly through `export_csv` → `import_csv`.
//! 2. Malformed CSV input returns a line-numbered error for every failure
//!    mode (truncated rows, non-numeric fields, out-of-range node ids,
//!    unsorted starts) and never panics.
//! 3. The new arrival processes (bursty background gaps, log-normal incast
//!    inter-event gaps) hit the requested offered load and are bit-identical
//!    for a fixed seed.

use backpressure_flow_control::sim::{SimDuration, SimTime};
use backpressure_flow_control::workloads::io::{
    export_csv, import_csv, CsvError, CsvErrorKind, TraceStats, TRACE_CSV_HEADER,
};
use backpressure_flow_control::workloads::{
    synthesize, ArrivalShape, IncastSchedule, TraceFlow, TraceParams, Workload,
};
use bfc_net::types::NodeId;
use bfc_testkit::{int_range, one_of, pair, property, triple, vec_of};

fn hosts(n: u32) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

fn shape_for(tag: u64) -> ArrivalShape {
    match tag % 3 {
        0 => ArrivalShape::paper_default(),
        1 => ArrivalShape::Poisson,
        _ => ArrivalShape::bursty_default(),
    }
}

property! {
    /// Synthesized traces — across seeds, loads, host counts and all three
    /// arrival shapes — survive a CSV round trip exactly.
    fn csv_round_trip_preserves_synthesized_traces(
        seed in int_range(0u64..10_000),
        load_pct in int_range(10u64..90),
        shape_tag in int_range(0u64..3),
    ) {
        let hosts = hosts(16);
        let params = TraceParams::background_only(
            Workload::Google,
            load_pct as f64 / 100.0,
            SimDuration::from_micros(120),
            seed,
        )
        .with_arrivals(shape_for(shape_tag));
        let flows = synthesize(&hosts, &params);
        let imported = import_csv(&export_csv(&flows)).expect("exported traces always parse");
        assert_eq!(imported, flows);
    }

    /// Hand-built flow lists with arbitrary picosecond-resolution start
    /// times, extreme sizes and extreme node ids round-trip exactly — the
    /// `start_ns` fractional encoding loses nothing.
    fn csv_round_trip_preserves_arbitrary_ps_starts(
        raw in vec_of(
            triple(
                pair(int_range(0u64..200), int_range(0u64..u32::MAX as u64)),
                int_range(1u64..u64::MAX),
                int_range(0u64..5_000_000),
            ),
            1..80,
        ),
    ) {
        let mut flows: Vec<TraceFlow> = raw
            .iter()
            .map(|&((a, b), size_bytes, start_ps)| {
                let src = NodeId(a as u32);
                // Guarantee src != dst without rejecting any sample.
                let dst = if b as u32 == src.0 { NodeId(src.0.wrapping_add(1)) } else { NodeId(b as u32) };
                TraceFlow {
                    src,
                    dst,
                    size_bytes,
                    start: SimTime::from_picos(start_ps),
                    is_incast: start_ps % 2 == 0,
                }
            })
            .collect();
        flows.sort_by_key(|f| f.start);
        let csv = export_csv(&flows);
        assert_eq!(import_csv(&csv).expect("valid by construction"), flows);
        // Exporting the re-import is byte-identical too: the format is
        // canonical.
        assert_eq!(export_csv(&import_csv(&csv).expect("parses")), csv);
    }

    /// Every kind of malformed row yields a line-numbered `CsvError` (line 3:
    /// one valid row sits between the header and the corruption) — never a
    /// panic, never silent acceptance.
    fn malformed_rows_fail_with_the_right_line_number(
        bad_row in one_of(&[
            "1,2,300",                    // truncated
            "1,2,300,5,0,extra",          // overlong
            "x,2,300,5,0",                // non-numeric src
            "1,y,300,5,0",                // non-numeric dst
            "1,2,zz,5,0",                 // non-numeric size
            "1,2,0,5,0",                  // zero size
            "1,2,300,nope,0",             // non-numeric start
            "1,2,300,5.2345,0",           // over-precise fraction
            "1,2,300,5.,0",               // bare trailing dot
            "1,2,300,.5,0",               // bare leading dot
            "1,2,300,5,maybe",            // bad is_incast
            "4294967296,2,300,5,0",       // src beyond u32
            "1,4294967296,300,5,0",       // dst beyond u32
            "7,7,300,5,0",                // self flow
            "1,2,300,1,0",                // unsorted (first row starts at 2ns)
        ]),
    ) {
        let csv = format!("{TRACE_CSV_HEADER}\n0,1,100,2,0\n{bad_row}\n");
        let err: CsvError = import_csv(&csv).expect_err(bad_row);
        assert_eq!(err.line, 3, "{bad_row}: wrong line in {err}");
        // The rendered message names the line for the operator.
        assert!(err.to_string().starts_with("line 3:"), "{err}");
    }
}

#[test]
fn error_kinds_match_the_failure_mode() {
    let case = |row: &str| {
        import_csv(&format!("{TRACE_CSV_HEADER}\n{row}\n")).expect_err(row).kind
    };
    assert_eq!(case("1,2,300"), CsvErrorKind::WrongFieldCount { found: 3 });
    assert_eq!(
        case("4294967296,2,300,5,0"),
        CsvErrorKind::NodeOutOfRange { column: "src", value: 4_294_967_296 }
    );
    assert_eq!(case("7,7,300,5,0"), CsvErrorKind::SelfFlow);
    assert!(matches!(
        case("1,2,300,nope,0"),
        CsvErrorKind::BadField { column: "start_ns", .. }
    ));
    let unsorted = format!("{TRACE_CSV_HEADER}\n0,1,100,9,0\n2,3,100,8,0\n");
    assert_eq!(
        import_csv(&unsorted).expect_err("unsorted").kind,
        CsvErrorKind::UnsortedStart
    );
    assert_eq!(
        import_csv("").expect_err("empty").kind,
        CsvErrorKind::MissingHeader
    );
    assert!(matches!(
        import_csv("not,a,header\n").expect_err("bad header").kind,
        CsvErrorKind::BadHeader { .. }
    ));
}

/// The offered load of a generated trace tracks the requested `load` for the
/// new arrival processes, not just the paper's log-normal default.
#[test]
fn new_arrival_processes_hit_the_requested_load() {
    let hosts = hosts(64);
    for (shape, schedule) in [
        (ArrivalShape::bursty_default(), IncastSchedule::paper_default()),
        (
            ArrivalShape::paper_default(),
            IncastSchedule::LogNormalGaps { sigma: 1.0 },
        ),
        (
            ArrivalShape::bursty_default(),
            IncastSchedule::LogNormalGaps { sigma: 1.0 },
        ),
    ] {
        let params = TraceParams::google_with_incast(SimDuration::from_millis(5), 71)
            .with_arrivals(shape)
            .with_incast_schedule(schedule);
        let flows = synthesize(&hosts, &params);
        let stats = TraceStats::from_flows(&flows, 100.0).expect("non-empty");
        // Background: 60% requested. Bursty traces are noisier than the
        // smooth processes, so the tolerance is generous but still pins the
        // first digit of the load.
        let background: u64 = flows
            .iter()
            .filter(|f| !f.is_incast)
            .map(|f| f.size_bytes)
            .sum();
        let bg_load = background as f64 * 8.0 / 5e-3 / (64.0 * 100e9);
        assert!(
            (0.30..0.90).contains(&bg_load),
            "{shape:?}/{schedule:?}: background load {bg_load} should track 0.60"
        );
        // Incast: 5% requested.
        let incast: u64 = flows
            .iter()
            .filter(|f| f.is_incast)
            .map(|f| f.size_bytes)
            .sum();
        let incast_load = incast as f64 * 8.0 / 5e-3 / (64.0 * 100e9);
        assert!(
            (0.015..0.10).contains(&incast_load),
            "{shape:?}/{schedule:?}: incast load {incast_load} should track 0.05"
        );
        assert!(stats.offered_load > 0.3, "summary load {}", stats.offered_load);
    }
}

/// Fixed seed ⇒ bit-identical traces for the bursty and log-normal-incast
/// variants, and different seeds diverge.
#[test]
fn new_arrival_processes_are_deterministic_per_seed() {
    let hosts = hosts(16);
    let params = TraceParams::google_with_incast(SimDuration::from_micros(500), 5)
        .with_arrivals(ArrivalShape::bursty_default())
        .with_incast_schedule(IncastSchedule::LogNormalGaps { sigma: 1.0 });
    assert_eq!(synthesize(&hosts, &params), synthesize(&hosts, &params));
    let reseeded = TraceParams { seed: 6, ..params };
    assert_ne!(synthesize(&hosts, &params), synthesize(&hosts, &reseeded));
    // And the variants actually change the trace relative to the defaults.
    let default_params = TraceParams::google_with_incast(SimDuration::from_micros(500), 5);
    assert_ne!(synthesize(&hosts, &params), synthesize(&hosts, &default_params));
}
