//! Property-based tests (proptest) on the core data structures and on the
//! end-to-end invariants of the simulator.

use backpressure_flow_control::core::{BfcConfig, CountingBloom};
use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::metrics::percentile;
use backpressure_flow_control::net::packet::PauseFrame;
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::net::types::NodeId;
use backpressure_flow_control::sim::{EventQueue, SimDuration, SimTime};
use backpressure_flow_control::transport::FlowSpec;
use backpressure_flow_control::workloads::{TraceFlow, Workload};
use proptest::prelude::*;

proptest! {
    /// The event queue always delivers events in non-decreasing time order,
    /// and FIFO within a timestamp.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    if times[prev] == times[idx] {
                        prop_assert!(prev < idx, "FIFO order within a timestamp");
                    }
                }
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    /// A bloom-filter pause frame never produces false negatives: every
    /// inserted VFID is reported as paused.
    #[test]
    fn pause_frame_has_no_false_negatives(
        vfids in proptest::collection::hash_set(0u32..16_384, 1..64),
        size_bytes in prop_oneof![Just(16usize), Just(32), Just(64), Just(128)],
    ) {
        let mut frame = PauseFrame::new(size_bytes, 4);
        for &v in &vfids {
            frame.insert(v);
        }
        for &v in &vfids {
            prop_assert!(frame.contains(v));
        }
    }

    /// The counting bloom filter behaves like a multiset: after removing
    /// exactly the inserted elements it is empty, and elements that still
    /// have outstanding inserts keep matching.
    #[test]
    fn counting_bloom_is_a_multiset(
        ops in proptest::collection::vec((0u32..256, 1usize..4), 1..50),
    ) {
        let mut cb = CountingBloom::new(64, 4);
        for &(vfid, count) in &ops {
            for _ in 0..count {
                cb.insert(vfid);
            }
        }
        for &(vfid, _) in &ops {
            prop_assert!(cb.contains(vfid));
        }
        // Remove all but one instance of the first element.
        let (first, count) = ops[0];
        for _ in 0..count - 1 {
            cb.remove(first);
        }
        prop_assert!(cb.contains(first), "one outstanding pause keeps the flow paused");
        // Remove everything.
        cb.remove(first);
        for &(vfid, count) in &ops[1..] {
            for _ in 0..count {
                cb.remove(vfid);
            }
        }
        prop_assert!(cb.is_empty());
        prop_assert!(cb.snapshot().is_empty());
    }

    /// Packetization conserves bytes: the per-packet sizes of a flow sum to
    /// the flow size, every packet is at most one MTU, and only the last
    /// packet may be smaller.
    #[test]
    fn packetization_conserves_bytes(size in 1u64..5_000_000, mtu in prop_oneof![Just(500u32), Just(1000), Just(1500)]) {
        let spec = FlowSpec {
            flow: backpressure_flow_control::net::types::FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            vfid: 1,
        };
        let n = spec.num_packets(mtu);
        let mut total = 0u64;
        for seq in 0..n {
            let s = spec.packet_size(seq, mtu);
            prop_assert!(s >= 1 && s <= mtu);
            if seq + 1 < n {
                prop_assert_eq!(s, mtu);
            }
            total += s as u64;
        }
        prop_assert_eq!(total, size);
    }

    /// The pause threshold is monotone: more active queues or slower links
    /// never increase it.
    #[test]
    fn pause_threshold_is_monotone(n1 in 1usize..64, n2 in 1usize..64, gbps in 1.0f64..400.0) {
        let cfg = BfcConfig::default();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(cfg.pause_threshold_bytes(gbps, hi) <= cfg.pause_threshold_bytes(gbps, lo));
        prop_assert!(cfg.pause_threshold_bytes(gbps / 2.0, lo) <= cfg.pause_threshold_bytes(gbps, lo));
    }

    /// Percentiles are monotone in `p` and bounded by the extremes.
    #[test]
    fn percentiles_are_monotone(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let p50 = percentile(&values, 50.0).unwrap();
        let p95 = percentile(&values, 95.0).unwrap();
        let p99 = percentile(&values, 99.0).unwrap();
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        prop_assert!(p50 <= p95 && p95 <= p99);
        prop_assert!(p99 <= max && p50 >= min);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end conservation: on a small fabric, for a random batch of
    /// flows under BFC, every flow completes, its completion time is at least
    /// the ideal time, and no packets are dropped.
    #[test]
    fn random_traces_complete_under_bfc(
        seed in 0u64..1_000,
        n_flows in 1usize..20,
    ) {
        let topo = fat_tree(FatTreeParams::tiny());
        let hosts = topo.hosts();
        let cdf = Workload::Google.cdf();
        let mut rng = backpressure_flow_control::sim::SimRng::new(seed);
        let trace: Vec<TraceFlow> = (0..n_flows)
            .map(|_| {
                let src = hosts[rng.next_index(hosts.len())];
                let dst = loop {
                    let d = hosts[rng.next_index(hosts.len())];
                    if d != src {
                        break d;
                    }
                };
                TraceFlow {
                    src,
                    dst,
                    size_bytes: cdf.sample(&mut rng).min(200_000).max(1),
                    start: SimTime::from_nanos(rng.next_below(100_000)),
                    is_incast: false,
                }
            })
            .collect();
        let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(100));
        let result = run_experiment(&topo, &trace, &config);
        prop_assert_eq!(result.completed_flows, result.total_flows);
        prop_assert_eq!(result.drops, 0);
        for record in &result.records {
            prop_assert!(record.fct >= record.ideal_fct || record.slowdown() >= 1.0);
        }
    }
}
