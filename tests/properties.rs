//! Property-based tests (via the in-tree `bfc-testkit` harness) on the core
//! data structures and on the end-to-end invariants of the simulator.
//!
//! On failure the runner prints the per-case seed; rerun exactly that case
//! with `BFC_TESTKIT_SEED=<seed> cargo test <property_name>`.

use backpressure_flow_control::core::{BfcConfig, CountingBloom};
use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::metrics::percentile;
use backpressure_flow_control::net::packet::PauseFrame;
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::net::types::{FlowId, NodeId};
use backpressure_flow_control::sim::{EventQueue, SimDuration, SimRng, SimTime};
use backpressure_flow_control::transport::FlowSpec;
use backpressure_flow_control::workloads::{TraceFlow, Workload};
use bfc_testkit::{f64_range, hash_set_of, int_range, one_of, pair, property, vec_of};

property! {
    /// The event queue always delivers events in non-decreasing time order,
    /// and FIFO within a timestamp.
    fn event_queue_is_time_ordered(times in vec_of(int_range(0u64..1_000), 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            assert!(t >= last_time);
            if t == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    if times[prev] == times[idx] {
                        assert!(prev < idx, "FIFO order within a timestamp");
                    }
                }
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    /// A bloom-filter pause frame never produces false negatives: every
    /// inserted VFID is reported as paused.
    fn pause_frame_has_no_false_negatives(
        vfids in hash_set_of(int_range(0u32..16_384), 1..64),
        size_bytes in one_of(&[16usize, 32, 64, 128]),
    ) {
        let mut frame = PauseFrame::new(size_bytes, 4);
        for &v in &vfids {
            frame.insert(v);
        }
        for &v in &vfids {
            assert!(frame.contains(v));
        }
    }

    /// The counting bloom filter behaves like a multiset: after removing
    /// exactly the inserted elements it is empty, and elements that still
    /// have outstanding inserts keep matching.
    fn counting_bloom_is_a_multiset(
        ops in vec_of(pair(int_range(0u32..256), int_range(1usize..4)), 1..50),
    ) {
        let mut cb = CountingBloom::new(64, 4);
        for &(vfid, count) in &ops {
            for _ in 0..count {
                cb.insert(vfid);
            }
        }
        for &(vfid, _) in &ops {
            assert!(cb.contains(vfid));
        }
        // Remove all but one instance of the first element.
        let (first, count) = ops[0];
        for _ in 0..count - 1 {
            cb.remove(first);
        }
        assert!(cb.contains(first), "one outstanding pause keeps the flow paused");
        // Remove everything.
        cb.remove(first);
        for &(vfid, count) in &ops[1..] {
            for _ in 0..count {
                cb.remove(vfid);
            }
        }
        assert!(cb.is_empty());
        assert!(cb.snapshot().is_empty());
    }

    /// Packetization conserves bytes: the per-packet sizes of a flow sum to
    /// the flow size, every packet is at most one MTU, and only the last
    /// packet may be smaller.
    fn packetization_conserves_bytes(
        size in int_range(1u64..5_000_000),
        mtu in one_of(&[500u32, 1000, 1500]),
    ) {
        let spec = FlowSpec {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            vfid: 1,
        };
        let n = spec.num_packets(mtu);
        let mut total = 0u64;
        for seq in 0..n {
            let s = spec.packet_size(seq, mtu);
            assert!(s >= 1 && s <= mtu);
            if seq + 1 < n {
                assert_eq!(s, mtu);
            }
            total += s as u64;
        }
        assert_eq!(total, size);
    }

    /// The pause threshold is monotone: more active queues or slower links
    /// never increase it.
    fn pause_threshold_is_monotone(
        n1 in int_range(1usize..64),
        n2 in int_range(1usize..64),
        gbps in f64_range(1.0..400.0),
    ) {
        let cfg = BfcConfig::default();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        assert!(cfg.pause_threshold_bytes(gbps, hi) <= cfg.pause_threshold_bytes(gbps, lo));
        assert!(cfg.pause_threshold_bytes(gbps / 2.0, lo) <= cfg.pause_threshold_bytes(gbps, lo));
    }

    /// Percentiles are monotone in `p` and bounded by the extremes.
    fn percentiles_are_monotone(values in vec_of(f64_range(0.0..1e6), 1..200)) {
        let p50 = percentile(&values, 50.0).unwrap();
        let p95 = percentile(&values, 95.0).unwrap();
        let p99 = percentile(&values, 99.0).unwrap();
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= max && p50 >= min);
    }
}

/// End-to-end conservation: on a small fabric, for a random batch of flows
/// under BFC, every flow completes, its completion time is at least the
/// ideal time, and no packets are dropped.
///
/// Simulations are comparatively slow, so this property runs a reduced
/// number of cases (as the proptest original did) via an explicit config.
#[test]
fn random_traces_complete_under_bfc() {
    bfc_testkit::check(
        "random_traces_complete_under_bfc",
        bfc_testkit::Config::from_env().with_cases(8),
        pair(int_range(0u64..1_000), int_range(1usize..20)),
        |&(seed, n_flows)| {
            let topo = fat_tree(FatTreeParams::tiny());
            let hosts = topo.hosts();
            let cdf = Workload::Google.cdf();
            let mut rng = SimRng::new(seed);
            let trace: Vec<TraceFlow> = (0..n_flows)
                .map(|_| {
                    let src = hosts[rng.next_index(hosts.len())];
                    let dst = loop {
                        let d = hosts[rng.next_index(hosts.len())];
                        if d != src {
                            break d;
                        }
                    };
                    TraceFlow {
                        src,
                        dst,
                        size_bytes: cdf.sample(&mut rng).min(200_000).max(1),
                        start: SimTime::from_nanos(rng.next_below(100_000)),
                        is_incast: false,
                    }
                })
                .collect();
            let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(100));
            let result = run_experiment(&topo, &trace, &config);
            assert_eq!(result.completed_flows, result.total_flows);
            assert_eq!(result.drops, 0);
            for record in &result.records {
                assert!(record.fct >= record.ideal_fct || record.slowdown() >= 1.0);
            }
        },
    );
}
