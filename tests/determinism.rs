//! Determinism regression tests:
//!
//! 1. The same `ExperimentConfig` run serially and through the
//!    `ParallelRunner` at 1, 2 and 4 threads yields identical `FctSummary`
//!    output (and identical scalar metrics).
//! 2. The calendar-queue `EventQueue` and the reference heap implementation
//!    deliver identical sequences on randomized event schedules.
//! 3. Traces replayed from CSV (including the bursty / clustered-incast
//!    variants) stay bit-identical through the `ParallelRunner` at 1, 2 and
//!    4 threads.

use backpressure_flow_control::experiments::{
    run_experiment, run_experiment_sharded, ExperimentConfig, ParallelRunner, RankMode,
    ReplayTrace, ScenarioSpec, Scheme,
};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::{EventQueue, ReferenceEventQueue, SimDuration, SimTime};
use backpressure_flow_control::workloads::{
    export_csv, synthesize, ArrivalShape, IncastSchedule, TraceFlow, TraceParams, Workload,
};
use bfc_testkit::{int_range, pair, property, vec_of};

fn tiny_trace(topo: &backpressure_flow_control::net::Topology, seed: u64) -> Vec<TraceFlow> {
    synthesize(
        &topo.hosts(),
        &TraceParams::background_only(
            Workload::Google,
            0.35,
            SimDuration::from_micros(150),
            seed,
        ),
    )
}

#[test]
fn parallel_runner_matches_serial_at_every_thread_count() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = tiny_trace(&topo, 21);
    let configs: Vec<ExperimentConfig> = Scheme::paper_lineup()
        .into_iter()
        .map(|scheme| ExperimentConfig::new(scheme, SimDuration::from_micros(150)))
        .collect();

    // Ground truth: plain serial calls to the pure per-run unit.
    let serial: Vec<_> = configs
        .iter()
        .map(|config| run_experiment(&topo, &trace, config))
        .collect();

    for threads in [1, 2, 4] {
        let parallel = ParallelRunner::new(threads).run_experiments(&topo, &trace, &configs);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.scheme, b.scheme, "{threads} threads: scheme order");
            assert_eq!(
                a.fct, b.fct,
                "{threads} threads: FctSummary must be bit-identical for {}",
                a.scheme
            );
            assert_eq!(a.records, b.records, "{threads} threads: raw FCT records");
            assert_eq!(a.completed_flows, b.completed_flows);
            assert_eq!(a.total_flows, b.total_flows);
            assert_eq!(a.end_time, b.end_time);
            assert_eq!(a.drops, b.drops);
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(
                a.pfc_pause_fraction.to_bits(),
                b.pfc_pause_fraction.to_bits()
            );
            assert_eq!(a.policy_stats, b.policy_stats);
        }
    }
}

property! {
    /// The calendar queue and the reference heap deliver the exact same
    /// `(time, payload)` sequence — including FIFO order among equal
    /// timestamps — for schedules that interleave pushes and pops across
    /// the current window, the bucket ring, and the overflow heap.
    fn calendar_queue_matches_reference_heap(
        schedule in vec_of(
            pair(int_range(0u64..3), int_range(0u64..2_000_000)),
            1..600,
        ),
    ) {
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut reference: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
        let mut payload = 0u64;
        for &(op, t) in &schedule {
            if op < 2 || calendar.is_empty() {
                // Time scales stress all three tiers: ties, in-calendar
                // times, and far-future overflow times.
                let nanos = match op {
                    0 => t % 512,                 // dense ties, current window
                    1 => t % 150_000,             // spread across the ring
                    _ => t * 4,                   // up to 8 ms: overflow
                };
                calendar.push(SimTime::from_nanos(nanos), payload);
                reference.push(SimTime::from_nanos(nanos), payload);
                payload += 1;
            } else {
                assert_eq!(calendar.pop(), reference.pop());
            }
            assert_eq!(calendar.peek_time(), reference.peek_time());
            assert_eq!(calendar.len(), reference.len());
            assert_eq!(calendar.is_empty(), reference.is_empty());
        }
        loop {
            let (a, b) = (calendar.pop(), reference.pop());
            assert_eq!(a, b, "drain order must match exactly");
            if a.is_none() {
                break;
            }
        }
    }

}

/// A trace that went through the CSV format replays bit-identically through
/// the `ParallelRunner` at every thread count — for the paper-default
/// workload and for the bursty / log-normal-incast arrival variants.
#[test]
fn replayed_csv_traces_are_bit_identical_at_1_2_4_threads() {
    let topo = fat_tree(FatTreeParams::tiny());
    let variants = [
        TraceParams::google_with_incast(SimDuration::from_micros(150), 29),
        TraceParams::google_with_incast(SimDuration::from_micros(150), 29)
            .with_arrivals(ArrivalShape::bursty_default())
            .with_incast_schedule(IncastSchedule::LogNormalGaps { sigma: 1.0 }),
    ];
    for params in variants {
        let params = TraceParams {
            incast_fan_in: 6,
            incast_total_bytes: 400_000,
            ..params
        };
        let trace = synthesize(&topo.hosts(), &params);
        let replay = ReplayTrace::from_csv_str(&export_csv(&trace)).expect("round trip");
        assert_eq!(replay.flows(), &trace[..]);
        let configs = [ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(150))];
        let ground_truth = run_experiment(&topo, &trace, &configs[0]);
        for threads in [1, 2, 4] {
            let replayed = replay
                .run_all(&topo, &configs, &ParallelRunner::new(threads))
                .expect("valid trace");
            assert_eq!(replayed.len(), 1);
            assert_eq!(
                ground_truth.fct, replayed[0].fct,
                "{threads} threads, {:?}",
                params.arrivals
            );
            assert_eq!(ground_truth.records, replayed[0].records);
            assert_eq!(ground_truth.end_time, replayed[0].end_time);
            assert_eq!(ground_truth.drops, replayed[0].drops);
        }
    }
}

/// Field-by-field bit-identity (floats compared by bits) between two runs
/// of the same config under different engine tunings.
fn assert_same_result(
    label: &str,
    a: &backpressure_flow_control::experiments::ExperimentResult,
    b: &backpressure_flow_control::experiments::ExperimentResult,
) {
    assert_eq!(a.scheme, b.scheme, "{label}: scheme");
    assert_eq!(a.fct, b.fct, "{label}: FCT summary");
    assert_eq!(a.records, b.records, "{label}: per-flow records");
    assert_eq!(
        a.occupancy.samples(),
        b.occupancy.samples(),
        "{label}: occupancy series"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&a.peak_queue_samples),
        bits(&b.peak_queue_samples),
        "{label}: peak queue series"
    );
    assert_eq!(
        bits(&a.occupied_queue_samples),
        bits(&b.occupied_queue_samples),
        "{label}: occupied queue series"
    );
    assert_eq!(
        a.utilization.to_bits(),
        b.utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(
        a.pfc_pause_fraction.to_bits(),
        b.pfc_pause_fraction.to_bits(),
        "{label}: PFC pause fraction"
    );
    assert_eq!(a.policy_stats, b.policy_stats, "{label}: policy stats");
    assert_eq!(a.drops, b.drops, "{label}: drops");
    assert_eq!(a.completed_flows, b.completed_flows, "{label}: completions");
    assert_eq!(a.total_flows, b.total_flows, "{label}: flow count");
    assert_eq!(a.end_time, b.end_time, "{label}: end time");
    assert_eq!(a.recovery, b.recovery, "{label}: recovery metrics");
}

/// Rank elision: the serial engine run with FIFO event keys (`RankMode::Fifo`,
/// what the `fifo-rank` feature selects) is bit-identical to the default
/// ranked run, for every paper-lineup scheme on a synthetic workload, a CSV
/// replay, and a link-fault scenario. Serial pop order is already total under
/// FIFO keys, so dropping the canonical rank must not change any result.
#[test]
fn fifo_rank_mode_matches_ranked_serial_bit_for_bit() {
    let topo = fat_tree(FatTreeParams::tiny());
    let window = SimDuration::from_micros(120);
    let synthetic = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.5, window, 23),
    );
    let params = TraceParams {
        incast_fan_in: 6,
        incast_total_bytes: 300_000,
        ..TraceParams::google_with_incast(window, 31)
    };
    let incast = synthesize(&topo.hosts(), &params);
    let replay = ReplayTrace::from_csv_str(&export_csv(&incast)).expect("round trip");
    let faults = ScenarioSpec::single_link_down_up(
        "tor0",
        "spine0",
        SimDuration::from_micros(50),
        SimDuration::from_micros(100),
    )
    .resolve(&topo)
    .expect("tiny topology has tor0/spine0");

    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let cases: [(&str, &[TraceFlow], ExperimentConfig); 3] = [
            (
                "synthetic",
                &synthetic,
                ExperimentConfig::new(scheme.clone(), window),
            ),
            ("replay", replay.flows(), ExperimentConfig::new(scheme.clone(), window)),
            (
                "faults",
                &synthetic,
                ExperimentConfig::new(scheme, window).with_dynamics(faults.clone()),
            ),
        ];
        for (kind, trace, config) in cases {
            let ranked = run_experiment(&topo, trace, &config.clone());
            let fifo = run_experiment(
                &topo,
                trace,
                &config.clone().with_rank_mode(RankMode::Fifo),
            );
            assert_same_result(&format!("{kind}/{name}: fifo vs ranked"), &ranked, &fifo);
            // The sharded engine always keeps ranked keys; a FIFO-mode config
            // must still shard to the same answer.
            let sharded = run_experiment_sharded(
                &topo,
                trace,
                &config.clone().with_rank_mode(RankMode::Fifo),
                2,
            );
            assert_same_result(&format!("{kind}/{name}: fifo vs sharded"), &ranked, &sharded);
        }
    }
}

/// Adaptive epoch batching is scheduling-only: with it on or off, the
/// sharded engine at 2 and 4 shards reproduces the serial result bit for
/// bit and exchanges exactly the same boundary events — while on a
/// quiescent workload (a trickle of flows between 10 µs sample ticks) the
/// batched driver crosses at most half the barriers.
#[test]
fn epoch_batching_is_bit_identical_and_cuts_barriers_when_quiescent() {
    let topo = fat_tree(FatTreeParams::tiny());
    let window = SimDuration::from_micros(2_000);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.005, window, 53),
    );
    let config = ExperimentConfig::new(Scheme::bfc(), window);
    let serial = run_experiment(&topo, &trace, &config);
    for shards in [2usize, 4] {
        let on = run_experiment_sharded(
            &topo,
            &trace,
            &config.clone().with_epoch_batching(true),
            shards,
        );
        let off = run_experiment_sharded(
            &topo,
            &trace,
            &config.clone().with_epoch_batching(false),
            shards,
        );
        assert_same_result(&format!("{shards} shards, batching on"), &serial, &on);
        assert_same_result(&format!("{shards} shards, batching off"), &serial, &off);
        assert_eq!(
            on.epochs.boundary_events, off.epochs.boundary_events,
            "{shards} shards: same cross-shard events either way"
        );
        assert!(on.epochs.widened > 0, "{shards} shards: never widened");
        assert!(
            off.epochs.barriers >= 2 * on.epochs.barriers,
            "{shards} shards: expected ≥2× fewer barriers, got off={} on={}",
            off.epochs.barriers,
            on.epochs.barriers
        );
    }
}

/// Replaying the same seed through the full experiment pipeline is
/// bit-identical, independent of how many worker threads ran it. (Direct
/// `check` call with a reduced case count: each case runs two full
/// experiments, so the default 256 cases would dominate the suite.)
#[test]
fn experiment_is_deterministic_across_replays_and_threads() {
    bfc_testkit::check(
        "experiment_is_deterministic_across_replays_and_threads",
        bfc_testkit::Config::from_env().with_cases(16),
        pair(int_range(1u64..500), int_range(1u64..5)),
        |&(seed, threads)| {
            let topo = fat_tree(FatTreeParams::tiny());
            let trace = tiny_trace(&topo, seed);
            let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(100))
                .with_seed(seed);
            let once = run_experiment(&topo, &trace, &config);
            let again = ParallelRunner::new(threads as usize).run_experiments(
                &topo,
                &trace,
                std::slice::from_ref(&config),
            );
            assert_eq!(again.len(), 1);
            assert_eq!(once.fct, again[0].fct);
            assert_eq!(once.end_time, again[0].end_time);
            assert_eq!(once.completed_flows, again[0].completed_flows);
        },
    );
}
