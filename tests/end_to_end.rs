//! Cross-crate integration tests: full simulations on small fabrics checking
//! the qualitative results the paper reports.

use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{
    concurrent_long_flows, synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload,
};

fn congested_trace(topo: &backpressure_flow_control::net::Topology, seed: u64) -> Vec<backpressure_flow_control::workloads::TraceFlow> {
    let params = TraceParams {
        workload: Workload::Google,
        load: 0.60,
        incast_load: 0.05,
        incast_fan_in: 6,
        incast_total_bytes: 400_000,
        duration: SimDuration::from_micros(300),
        host_gbps: 100.0,
        seed,
        arrivals: ArrivalShape::paper_default(),
        incast_schedule: IncastSchedule::paper_default(),
    };
    synthesize(&topo.hosts(), &params)
}

fn run(scheme: Scheme, topo: &backpressure_flow_control::net::Topology, trace: &[backpressure_flow_control::workloads::TraceFlow]) -> backpressure_flow_control::experiments::ExperimentResult {
    let config = ExperimentConfig::new(scheme, SimDuration::from_micros(300));
    run_experiment(topo, trace, &config)
}

#[test]
fn all_schemes_deliver_every_flow_on_a_congested_fabric() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = congested_trace(&topo, 21);
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let r = run(scheme, &topo, &trace);
        assert_eq!(
            r.completed_flows, r.total_flows,
            "{name}: {}/{} flows completed",
            r.completed_flows, r.total_flows
        );
    }
}

#[test]
fn bfc_beats_dcqcn_at_the_tail_for_short_flows() {
    // The paper's headline claim (Fig. 5): BFC's 99th-percentile slowdown for
    // short flows is several times better than DCQCN's under load with
    // incast. Verify the ordering (not the exact factor) on a small fabric,
    // averaged over seeds to avoid flakiness.
    let topo = fat_tree(FatTreeParams::tiny());
    let mut bfc_total = 0.0;
    let mut dcqcn_total = 0.0;
    for seed in [3u64, 5, 8] {
        let trace = congested_trace(&topo, seed);
        let bfc = run(Scheme::bfc(), &topo, &trace);
        let dcqcn = run(
            Scheme::Dcqcn {
                window: false,
                sfq: false,
            },
            &topo,
            &trace,
        );
        let short_p99 = |r: &backpressure_flow_control::experiments::ExperimentResult| {
            r.fct
                .buckets
                .iter()
                .filter(|b| b.bucket.hi <= 10_000)
                .map(|b| b.p99)
                .fold(0.0, f64::max)
        };
        bfc_total += short_p99(&bfc);
        dcqcn_total += short_p99(&dcqcn);
    }
    assert!(
        bfc_total < dcqcn_total,
        "BFC short-flow p99 ({bfc_total:.2} summed) should beat DCQCN ({dcqcn_total:.2} summed)"
    );
}

#[test]
fn bfc_tracks_ideal_fq_within_a_small_factor() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = congested_trace(&topo, 4);
    let bfc = run(Scheme::bfc(), &topo, &trace);
    let ideal = run(Scheme::IdealFq, &topo, &trace);
    let b = bfc.fct.overall.as_ref().expect("bfc summary").p99;
    let i = ideal.fct.overall.as_ref().expect("ideal summary").p99;
    assert!(
        b <= i * 6.0 + 2.0,
        "BFC overall p99 ({b:.2}) should be within a small factor of Ideal-FQ ({i:.2})"
    );
}

#[test]
fn bfc_keeps_tail_buffer_occupancy_below_dcqcn() {
    // Fig. 6a: BFC's buffer occupancy distribution sits well below DCQCN's.
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = congested_trace(&topo, 13);
    let bfc = run(Scheme::bfc(), &topo, &trace);
    let dcqcn = run(
        Scheme::Dcqcn {
            window: false,
            sfq: false,
        },
        &topo,
        &trace,
    );
    let b = bfc.occupancy.percentile_bytes(99.0);
    let d = dcqcn.occupancy.percentile_bytes(99.0);
    assert!(
        b <= d,
        "BFC p99 occupancy ({b} B) should not exceed DCQCN's ({d} B)"
    );
}

#[test]
fn bfc_is_lossless_and_sustains_utilization_under_incast() {
    // Fig. 8: under a pure incast plus long-lived flows, BFC avoids drops
    // (PFC backstop) and keeps goodput high.
    let topo = fat_tree(FatTreeParams::tiny());
    let hosts = topo.hosts();
    let trace = concurrent_long_flows(&hosts, hosts[0], 7, 300_000);
    let mut config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(300));
    config.drain = SimDuration::from_micros(2_400);
    let r = run_experiment(&topo, &trace, &config);
    assert_eq!(r.drops, 0, "BFC with its PFC backstop must not drop packets");
    assert_eq!(r.completed_flows, r.total_flows);
    assert!(
        r.policy_stats.pauses > 0 && r.policy_stats.resumes > 0,
        "hop-by-hop pauses must be exercised"
    );
}

#[test]
fn dynamic_queue_assignment_collides_less_than_static_hashing() {
    // Fig. 7b: BFC's dynamic assignment nearly eliminates queue collisions
    // compared with the BFC-VFID straw proposal.
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = congested_trace(&topo, 17);
    let bfc = run(Scheme::bfc(), &topo, &trace);
    let straw = run(Scheme::bfc_vfid(), &topo, &trace);
    assert!(
        bfc.policy_stats.collision_fraction() <= straw.policy_stats.collision_fraction(),
        "dynamic assignment ({:.4}) must not collide more than static hashing ({:.4})",
        bfc.policy_stats.collision_fraction(),
        straw.policy_stats.collision_fraction()
    );
}

#[test]
fn resume_limiting_caps_per_queue_buffering() {
    // Fig. 10: with the resume limit, the largest physical queue stays near a
    // couple of hop-BDPs regardless of flow count; without it, it grows.
    let topo = fat_tree(FatTreeParams::tiny());
    let hosts = topo.hosts();
    let trace = concurrent_long_flows(&hosts, hosts[0], 7, 200_000);
    let mut limited_cfg = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(300));
    limited_cfg.drain = SimDuration::from_micros(2_400);
    let limited = run_experiment(&topo, &trace, &limited_cfg);
    let mut unlimited_cfg = ExperimentConfig::new(
        Scheme::Bfc(backpressure_flow_control::core::BfcConfig::without_resume_limit()),
        SimDuration::from_micros(300),
    );
    unlimited_cfg.drain = SimDuration::from_micros(2_400);
    let unlimited = run_experiment(&topo, &trace, &unlimited_cfg);
    let p99 = |r: &backpressure_flow_control::experiments::ExperimentResult| {
        backpressure_flow_control::metrics::percentile(&r.peak_queue_samples, 99.0).unwrap_or(0.0)
    };
    assert!(
        p99(&limited) <= p99(&unlimited) + 1.0,
        "resume limiting ({:.0} B) must not buffer more than BFC-BufferOpt ({:.0} B)",
        p99(&limited),
        p99(&unlimited)
    );
}

#[test]
fn results_are_reproducible_across_runs() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = congested_trace(&topo, 2);
    let a = run(Scheme::bfc(), &topo, &trace);
    let b = run(Scheme::bfc(), &topo, &trace);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.policy_stats, b.policy_stats);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.fct, y.fct);
    }
}
