//! `bfc-testkit` properties for `bfc-net`: shared-buffer accounting and PFC
//! threshold invariants under randomized admit/release sequences.
//!
//! On failure the runner prints the per-case seed; rerun exactly that case
//! with `BFC_TESTKIT_SEED=<seed> cargo test <property_name>`.

use backpressure_flow_control::net::buffer::SharedBuffer;
use backpressure_flow_control::net::config::PfcConfig;
use bfc_testkit::{int_range, property, triple, vec_of};

const NUM_PORTS: usize = 4;

/// One randomized step: which ingress, how many bytes, and whether to admit
/// (0, 1) or release the oldest admitted packet (2).
type Op = (u64, u64, u64);

fn op_gen() -> impl bfc_testkit::Gen<Value = Vec<Op>> {
    vec_of(
        triple(
            int_range(0u64..NUM_PORTS as u64),
            int_range(64u64..3_000),
            int_range(0u64..3),
        ),
        1..400,
    )
}

property! {
    /// Shared-buffer accounting never goes negative, never exceeds the
    /// capacity, and the per-ingress occupancies always sum to the switch
    /// total (the buffer is fully attributed to ingress ports).
    fn shared_buffer_accounting_is_exact(ops in op_gen()) {
        let capacity = 64_000u64;
        let mut buffer = SharedBuffer::new(capacity, NUM_PORTS);
        // Model: the admitted packets still held, per ingress, FIFO.
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); NUM_PORTS];
        let mut expected_drops = 0u64;

        for &(ingress, bytes, action) in &ops {
            let (ingress, bytes) = (ingress as u32, bytes as u32);
            if action < 2 {
                let fits = buffer.occupancy() + bytes as u64 <= capacity;
                let admitted = buffer.admit(bytes, ingress);
                assert_eq!(admitted, fits, "admit must succeed exactly when the packet fits");
                if admitted {
                    held[ingress as usize].push(bytes as u64);
                } else {
                    expected_drops += 1;
                }
            } else if let Some(bytes) = held[ingress as usize].first().copied() {
                held[ingress as usize].remove(0);
                buffer.release(bytes as u32, ingress);
            }

            // Invariants after every step.
            let model_total: u64 = held.iter().flatten().sum();
            assert_eq!(buffer.occupancy(), model_total, "occupancy mirrors the held packets");
            assert!(buffer.occupancy() <= capacity, "occupancy never exceeds capacity");
            assert_eq!(buffer.free(), capacity - buffer.occupancy());
            let per_ingress_sum: u64 = (0..NUM_PORTS as u32)
                .map(|i| buffer.ingress_occupancy(i))
                .sum();
            assert_eq!(
                per_ingress_sum,
                buffer.occupancy(),
                "per-ingress occupancies must sum to the switch total"
            );
            for (i, packets) in held.iter().enumerate() {
                assert_eq!(
                    buffer.ingress_occupancy(i as u32),
                    packets.iter().sum::<u64>(),
                    "ingress {i} accounting must match its held packets"
                );
            }
            assert_eq!(buffer.drops(), expected_drops);
        }
    }

    /// The dynamic PFC threshold is honored: a pause transition happens
    /// exactly when an unpaused ingress exceeds the threshold, a resume
    /// exactly when a paused ingress falls below the resume fraction of it,
    /// and nothing otherwise.
    fn pfc_pause_thresholds_are_honored(ops in op_gen()) {
        let pfc = PfcConfig::default();
        let capacity = 48_000u64;
        let mut buffer = SharedBuffer::new(capacity, NUM_PORTS);
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); NUM_PORTS];

        for &(ingress, bytes, action) in &ops {
            let (ingress, bytes) = (ingress as u32, bytes as u32);
            if action < 2 {
                if buffer.admit(bytes, ingress) {
                    held[ingress as usize].push(bytes as u64);
                }
            } else if let Some(bytes) = held[ingress as usize].first().copied() {
                held[ingress as usize].remove(0);
                buffer.release(bytes as u32, ingress);
            }

            // Evaluate the documented transition rule for the touched port.
            let threshold = pfc.pause_threshold(buffer.free());
            let occupancy = buffer.ingress_occupancy(ingress);
            let was_paused = buffer.upstream_paused(ingress);
            let transition = buffer.pfc_transition(ingress, &pfc);
            match transition {
                Some(true) => {
                    assert!(!was_paused, "pause only fires from the unpaused state");
                    assert!(
                        occupancy > threshold,
                        "pause requires occupancy {occupancy} > threshold {threshold}"
                    );
                    assert!(buffer.upstream_paused(ingress));
                }
                Some(false) => {
                    assert!(was_paused, "resume only fires from the paused state");
                    assert!(
                        (occupancy as f64) < pfc.resume_fraction * threshold as f64,
                        "resume requires occupancy below the resume fraction"
                    );
                    assert!(!buffer.upstream_paused(ingress));
                }
                None => {
                    assert_eq!(
                        buffer.upstream_paused(ingress),
                        was_paused,
                        "no transition must not change the pause state"
                    );
                    if !was_paused {
                        assert!(occupancy <= threshold, "unpaused above threshold must pause");
                    } else {
                        assert!(
                            (occupancy as f64) >= pfc.resume_fraction * threshold as f64,
                            "paused below the resume point must resume"
                        );
                    }
                }
            }
        }
    }

    /// A disabled PFC never produces transitions no matter the load.
    fn disabled_pfc_never_transitions(ops in op_gen()) {
        let pfc = PfcConfig::disabled();
        let mut buffer = SharedBuffer::new(16_000, NUM_PORTS);
        for &(ingress, bytes, _) in &ops {
            let ingress = ingress as u32;
            buffer.admit(bytes as u32, ingress);
            assert_eq!(buffer.pfc_transition(ingress, &pfc), None);
            assert!(!buffer.upstream_paused(ingress));
        }
    }
}
