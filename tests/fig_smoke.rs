//! Smoke tests for the whole evaluation surface: every scheme in
//! `Scheme::paper_lineup()` (plus the ablations that only appear in specific
//! figures) and every `figNN` figure function, all at quick scale on a tiny
//! config. The 14 `figNN_*` binaries are thin wrappers around these same
//! functions, so this suite keeps them from silently rotting.

use backpressure_flow_control::core::BfcConfig;
use backpressure_flow_control::experiments::figures::{
    self, failure_sweep, fig02, fig03, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12,
    fig13, fig14, Scale,
};
use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{synthesize, TraceParams, Workload};

/// Every scheme the paper evaluates — the Fig. 5 lineup plus the ablations
/// used by Figs. 7/10/11 — delivers all flows of a tiny trace.
#[test]
fn every_scheme_completes_a_tiny_trace() {
    let topo = fat_tree(FatTreeParams::tiny());
    let params = TraceParams::background_only(
        Workload::Google,
        0.3,
        SimDuration::from_micros(150),
        11,
    );
    let trace = synthesize(&topo.hosts(), &params);
    let mut schemes = Scheme::paper_lineup();
    schemes.push(Scheme::bfc_vfid());
    schemes.push(Scheme::Bfc(BfcConfig::without_resume_limit()));
    schemes.push(Scheme::Bfc(BfcConfig::without_high_priority_queue()));
    schemes.push(Scheme::SfqInfBuffer);
    for scheme in schemes {
        let name = scheme.name();
        let mut config = ExperimentConfig::new(scheme, SimDuration::from_micros(150));
        // Rate-based schemes (HPCC, DCQCN) can converge slowly on the last
        // straggler; give everyone a generous drain window.
        config.drain = SimDuration::from_micros(150) * 16;
        let result = run_experiment(&topo, &trace, &config);
        assert_eq!(
            result.completed_flows, result.total_flows,
            "{name}: {}/{} flows completed",
            result.completed_flows, result.total_flows
        );
    }
}

#[test]
fn fig01_hw_trends_smoke() {
    let t = figures::fig01::run();
    assert!(t.contains("Fig 1") && t.contains("Tomahawk3"));
}

#[test]
fn fig02_buffer_vs_speed_smoke() {
    let t = fig02::run(&Scale::quick());
    assert!(t.contains("Fig 2"), "unexpected output:\n{t}");
    // One row per swept link speed.
    for speed in ["10", "40", "100"] {
        assert!(t.contains(speed), "speed {speed} missing:\n{t}");
    }
}

#[test]
fn fig03_buffer_ratio_smoke() {
    let t = fig03::run(&Scale::quick());
    assert!(t.contains("Fig 3") && t.lines().count() >= 5, "unexpected output:\n{t}");
}

#[test]
fn fig04_workload_cdf_smoke() {
    let t = figures::fig04::run();
    for name in ["Google", "FB_Hadoop", "WebSearch"] {
        assert!(t.contains(name), "workload {name} missing:\n{t}");
    }
}

#[test]
fn fig05_all_panels_smoke() {
    let t = fig05::run(&Scale::quick());
    for panel in ["Fig 5a", "Fig 5b", "Fig 5c"] {
        assert!(t.contains(panel), "panel {panel} missing:\n{t}");
    }
    for scheme in ["BFC", "Ideal-FQ", "DCQCN", "DCQCN+Win", "HPCC", "DCQCN+Win+SFQ"] {
        assert!(t.contains(scheme), "scheme {scheme} missing:\n{t}");
    }
}

#[test]
fn fig06_buffer_pfc_smoke() {
    let t = fig06::run(&Scale::quick());
    assert!(t.contains("Fig 6") && t.contains("BFC"), "unexpected output:\n{t}");
}

#[test]
fn fig07_queue_assignment_smoke() {
    let t = fig07::run(&Scale::quick());
    assert!(t.contains("BFC-VFID") && t.contains("SFQ+InfBuffer"), "unexpected output:\n{t}");
}

#[test]
fn fig08_incast_fanin_smoke() {
    let scale = Scale::quick();
    let t = fig08::run(&scale);
    for f in fig08::fan_ins(&scale) {
        assert!(t.contains(&format!("{f:>6}")), "fan-in {f} missing:\n{t}");
    }
}

#[test]
fn fig09_cross_dc_smoke() {
    let t = fig09::run(&Scale::quick());
    assert!(t.contains("intra-DC") && t.contains("inter-DC"), "unexpected output:\n{t}");
}

#[test]
fn fig10_buffer_opt_smoke() {
    let t = fig10::run(&Scale::quick());
    assert!(t.contains("BFC-BufferOpt"), "unexpected output:\n{t}");
}

#[test]
fn fig11_high_priority_smoke() {
    let t = fig11::run(&Scale::quick());
    assert!(t.contains("BFC-HighPriorityQ"), "unexpected output:\n{t}");
}

#[test]
fn fig12_num_queues_smoke() {
    let scale = Scale::quick();
    let t = fig12::run(&scale);
    for q in fig12::queue_counts(&scale) {
        assert!(t.contains(&format!("{q:>6}")), "queue count {q} missing:\n{t}");
    }
}

#[test]
fn fig13_num_vfids_smoke() {
    let scale = Scale::quick();
    let t = fig13::run(&scale);
    for v in fig13::vfid_counts(&scale) {
        assert!(t.contains(&format!("{v:>6}")), "vfid count {v} missing:\n{t}");
    }
}

#[test]
fn fig14_bloom_size_smoke() {
    let t = fig14::run(&Scale::quick());
    for b in fig14::bloom_sizes() {
        assert!(t.contains(&format!("{b:>8}")), "bloom size {b} missing:\n{t}");
    }
}

#[test]
fn fig15_failure_sweep_smoke() {
    let t = failure_sweep::run(&Scale::quick());
    for shape in ["single down/up", "degraded core", "flapping"] {
        assert!(t.contains(shape), "shape {shape} missing:\n{t}");
    }
    for scheme in ["BFC", "DCQCN+Win", "HPCC"] {
        assert!(t.contains(scheme), "scheme {scheme} missing:\n{t}");
    }
    for k in failure_sweep::failure_counts() {
        assert!(
            t.contains(&format!("{k} links down")),
            "failure count {k} missing:\n{t}"
        );
    }
}
