//! Fuzzer regression tests.
//!
//! Every shrunk reproducer committed under `tests/scenarios/` must keep
//! replaying bit-identically on the serial engine and at 2 and 4 shards —
//! the worst cases the fuzzer has found are pinned as permanent regression
//! inputs. The fuzzer itself must stay a pure function of its config, and
//! the safety detectors must stay quiet across the paper's scheme lineup on
//! a healthy trace.

use std::path::Path;

use bfc_experiments::fuzz::{self, fuzz, FuzzConfig, Objective, Reproducer};
use bfc_experiments::runner::ExperimentResult;
use bfc_experiments::{run_experiment, ExperimentConfig, Scheme};
use bfc_sim::SimDuration;
use bfc_workloads::{synthesize, TraceParams, Workload};

/// Field-by-field bit-identity, every float compared by its bits (the same
/// contract `tests/sharding.rs` enforces for the engines in general).
fn assert_identical(label: &str, a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.scheme, b.scheme, "{label}: scheme");
    assert_eq!(a.fct, b.fct, "{label}: FCT summary");
    assert_eq!(a.records, b.records, "{label}: per-flow records");
    assert_eq!(
        a.utilization.to_bits(),
        b.utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(a.drops, b.drops, "{label}: drops");
    assert_eq!(a.completed_flows, b.completed_flows, "{label}: completions");
    assert_eq!(a.total_flows, b.total_flows, "{label}: flow count");
    assert_eq!(a.end_time, b.end_time, "{label}: end time");
    assert_eq!(a.recovery, b.recovery, "{label}: recovery metrics");
    assert_eq!(a.safety, b.safety, "{label}: safety report");
}

#[test]
fn committed_reproducers_replay_bit_identically_across_shards() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/scenarios must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 2,
        "expected at least two committed reproducers in {}",
        dir.display()
    );
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable reproducer");
        let repro = Reproducer::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: committed reproducer must parse: {e}"));
        assert!(!repro.scenario.is_empty(), "{name}: reproducer has faults");
        let serial = repro.replay(1).expect("serial replay");
        assert!(serial.total_flows > 0, "{name}: reproducer synthesizes flows");
        for shards in [2usize, 4] {
            let sharded = repro.replay(shards).expect("sharded replay");
            assert_identical(&format!("{name} @ {shards} shards"), &serial, &sharded);
        }
    }
}

#[test]
fn fixed_seed_fuzz_is_deterministic_and_round_trips() {
    let mut cfg = FuzzConfig::new();
    cfg.seed = 3;
    cfg.budget = 3;
    cfg.shrink_evals = 4;
    cfg.objective = Objective::GoodputDip;
    let a = fuzz(&cfg).expect("fuzz succeeds");
    let b = fuzz(&cfg).expect("fuzz succeeds");
    assert_eq!(a.reproducer, b.reproducer, "same config, same reproducer");
    assert_eq!(a.score.to_bits(), b.score.to_bits(), "same score bits");
    assert_eq!(a.original_score.to_bits(), b.original_score.to_bits());
    assert_eq!(a.evals, b.evals, "same evaluation count");
    assert_eq!(a.shrink_steps, b.shrink_steps, "same shrink path");
    // The serialized artifact is byte-stable and parses back to itself.
    let text = a.reproducer.to_string();
    assert_eq!(text, b.reproducer.to_string());
    assert_eq!(
        Reproducer::parse(&text).expect("display output parses"),
        a.reproducer
    );
    // Shrinking never loses the offending behaviour entirely.
    assert!(a.score >= 0.9 * a.original_score);
}

#[test]
fn pfc_pause_frames_reach_the_safety_tracker() {
    // A hard incast into a small shared buffer forces the PFC backstop on;
    // the frames the switches exchange must show up in the safety report
    // (the wiring witness — the detectors themselves are unit-tested in
    // bfc-metrics).
    let topo = fuzz::topology_by_name("tiny").expect("tiny always builds");
    let hosts = topo.hosts();
    let duration = SimDuration::from_micros(150);
    let params = TraceParams {
        host_gbps: topo.host_uplink(hosts[0]).link.rate_gbps,
        incast_load: 0.6,
        incast_fan_in: hosts.len() - 1,
        ..TraceParams::google_with_incast(duration, 1)
    };
    let trace = synthesize(&hosts, &params);
    let config = ExperimentConfig::new(
        Scheme::Dcqcn { window: false, sfq: false },
        duration,
    )
    .with_buffer_bytes(40_000);
    let result = run_experiment(&topo, &trace, &config);
    assert!(
        result.pfc_pause_fraction > 0.0,
        "incast under a tiny buffer must trip PFC"
    );
    assert!(
        result.safety.pause_frames > 0,
        "PFC frames must be recorded by the safety tracker"
    );
    assert!(result.safety.max_pause_depth >= 1);
}

#[test]
fn paper_lineup_reports_no_safety_violations_on_a_healthy_trace() {
    let topo = fuzz::topology_by_name("tiny").expect("tiny always builds");
    let hosts = topo.hosts();
    let duration = SimDuration::from_micros(200);
    let params = TraceParams {
        host_gbps: topo.host_uplink(hosts[0]).link.rate_gbps,
        ..TraceParams::background_only(Workload::Google, 0.3, duration, 1)
    };
    let trace = synthesize(&hosts, &params);
    for scheme in Scheme::paper_lineup() {
        let config = ExperimentConfig::new(scheme, duration);
        let result = run_experiment(&topo, &trace, &config);
        assert_eq!(
            result.safety.violations(),
            0,
            "{}: healthy run must not trip the safety detectors \
             (deadlocks {}, livelock {})",
            result.scheme,
            result.safety.deadlocks,
            result.safety.livelock,
        );
        assert_eq!(result.safety.deadlocks, 0, "{}: deadlocks", result.scheme);
        assert!(!result.safety.livelock, "{}: livelock", result.scheme);
    }
}
