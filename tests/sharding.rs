//! Sharded-engine acceptance tests.
//!
//! 1. Partitioner properties: every node lands in exactly one shard, the
//!    partition is a pure function of `(topology, shard count)`, hosts stay
//!    in their ToR's shard, and every cross-shard cable's propagation delay
//!    is at least the epoch lookahead.
//! 2. The differential determinism suite: every paper-lineup scheme ×
//!    (synthetic workload, CSV trace replay, link-fault scenario) produces a
//!    bit-identical `ExperimentResult` at 1, 2 and 4 shards versus the
//!    serial engine.

use backpressure_flow_control::experiments::{
    run_experiment, run_experiment_sharded, ExperimentConfig, ExperimentResult, ReplayTrace,
    ScenarioSpec, Scheme, ShardPlan,
};
use backpressure_flow_control::net::topology::{
    cross_dc, fat_tree, CrossDcParams, FatTreeParams, Topology,
};
use backpressure_flow_control::net::types::NodeId;
use backpressure_flow_control::sim::{SimDuration, SimTime};
use backpressure_flow_control::workloads::{
    export_csv, synthesize, TraceFlow, TraceParams, Workload,
};
use bfc_testkit::{int_range, pair, property};

const WINDOW: SimDuration = SimDuration::from_micros(120);

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

fn topologies() -> Vec<Topology> {
    vec![
        fat_tree(FatTreeParams::tiny()),
        fat_tree(FatTreeParams::t2()),
        cross_dc(CrossDcParams::paper_default()).topology,
    ]
}

property! {
    /// Partitioner invariants over every built-in topology shape and any
    /// requested shard count, including over-subscribed ones.
    fn shard_partition_is_total_deterministic_and_latency_safe(
        case in pair(int_range(0u64..3), int_range(1u64..12)),
    ) {
        let (which, requested) = case;
        let topo = &topologies()[which as usize];
        let plan = ShardPlan::partition(topo, requested as usize)
            .expect("built-in topologies partition at any count");

        // Exactly one shard per node, every shard id in range, and the
        // effective count is clamped to the switch count.
        assert!(plan.num_shards() >= 1);
        assert!(plan.num_shards() <= topo.switches().len());
        for idx in 0..topo.num_nodes() {
            assert!((plan.shard_of(NodeId(idx as u32)) as usize) < plan.num_shards());
        }

        // Pure function of (topology, count): a second partition is equal.
        let again = ShardPlan::partition(topo, requested as usize).expect("same inputs");
        assert_eq!(plan, again, "partitioning must be deterministic");

        // Hosts are co-located with their ToR, so the only cross-shard
        // cables are switch-switch; each carries at least the lookahead.
        for h in topo.hosts() {
            assert_eq!(plan.shard_of(h), plan.shard_of(topo.host_uplink(h).peer));
        }
        let mut cross = 0usize;
        for idx in 0..topo.num_nodes() {
            let node = NodeId(idx as u32);
            for spec in topo.ports(node) {
                if plan.shard_of(node) != plan.shard_of(spec.peer) {
                    cross += 1;
                    let lookahead = plan.lookahead().expect("cross-shard cable implies lookahead");
                    assert!(
                        spec.link.propagation >= lookahead,
                        "cross-shard cable faster than the epoch lookahead"
                    );
                    assert!(!lookahead.is_zero());
                }
            }
        }
        if plan.num_shards() == 1 {
            assert_eq!(cross, 0);
            assert_eq!(plan.lookahead(), None);
        }
    }
}

/// Field-by-field bit-identity, including every float compared by its bits.
fn assert_identical(label: &str, a: &ExperimentResult, b: &ExperimentResult) {
    assert_eq!(a.scheme, b.scheme, "{label}: scheme");
    assert_eq!(a.fct, b.fct, "{label}: FCT summary");
    assert_eq!(a.records, b.records, "{label}: per-flow records");
    assert_eq!(
        a.occupancy.samples(),
        b.occupancy.samples(),
        "{label}: occupancy series"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&a.peak_queue_samples),
        bits(&b.peak_queue_samples),
        "{label}: peak queue series"
    );
    assert_eq!(
        bits(&a.occupied_queue_samples),
        bits(&b.occupied_queue_samples),
        "{label}: occupied queue series"
    );
    assert_eq!(
        a.utilization.to_bits(),
        b.utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(
        a.pfc_pause_fraction.to_bits(),
        b.pfc_pause_fraction.to_bits(),
        "{label}: PFC pause fraction"
    );
    assert_eq!(a.policy_stats, b.policy_stats, "{label}: policy stats");
    assert_eq!(a.drops, b.drops, "{label}: drops");
    assert_eq!(a.completed_flows, b.completed_flows, "{label}: completions");
    assert_eq!(a.total_flows, b.total_flows, "{label}: flow count");
    assert_eq!(a.end_time, b.end_time, "{label}: end time");
    assert_eq!(a.recovery, b.recovery, "{label}: recovery metrics");
    assert_eq!(a.safety, b.safety, "{label}: safety report");
}

fn compare_all_shard_counts(
    label: &str,
    topo: &Topology,
    trace: &[TraceFlow],
    config: &ExperimentConfig,
) {
    let serial = run_experiment(topo, trace, config);
    for shards in [1usize, 2, 4] {
        let sharded = run_experiment_sharded(topo, trace, config, shards);
        assert_identical(&format!("{label} @ {shards} shards"), &serial, &sharded);
    }
}

fn synthetic_trace(topo: &Topology, seed: u64) -> Vec<TraceFlow> {
    synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.5, WINDOW, seed),
    )
}

/// Acceptance (synthetic): every paper-lineup scheme, bit-identical at
/// 1/2/4 shards versus the serial engine.
#[test]
fn paper_lineup_is_bit_identical_across_shard_counts_synthetic() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 23);
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let config = ExperimentConfig::new(scheme, WINDOW);
        compare_all_shard_counts(&format!("synthetic/{name}"), &topo, &trace, &config);
    }
}

/// Acceptance (trace replay): the CSV round-trip path through the sharded
/// engine matches the serial engine for every lineup scheme.
#[test]
fn paper_lineup_is_bit_identical_across_shard_counts_trace_replay() {
    let topo = fat_tree(FatTreeParams::tiny());
    let params = TraceParams {
        incast_fan_in: 6,
        incast_total_bytes: 300_000,
        ..TraceParams::google_with_incast(WINDOW, 31)
    };
    let trace = synthesize(&topo.hosts(), &params);
    let replay = ReplayTrace::from_csv_str(&export_csv(&trace)).expect("round trip");
    assert_eq!(replay.flows(), &trace[..]);
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let config = ExperimentConfig::new(scheme, WINDOW);
        compare_all_shard_counts(
            &format!("replay/{name}"),
            &topo,
            replay.flows(),
            &config,
        );
    }
}

/// Acceptance (fault scenario): a link failure with repair — routing
/// re-convergence, dead-egress flushes, recovery metrics — stays
/// bit-identical at every shard count for every lineup scheme.
#[test]
fn paper_lineup_is_bit_identical_across_shard_counts_under_faults() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 37);
    let schedule = ScenarioSpec::single_link_down_up("tor0", "spine0", us(50), us(100))
        .resolve(&topo)
        .expect("tiny topology has tor0/spine0");
    for scheme in Scheme::paper_lineup() {
        let name = scheme.name();
        let config = ExperimentConfig::new(scheme, WINDOW).with_dynamics(schedule.clone());
        compare_all_shard_counts(&format!("faults/{name}"), &topo, &trace, &config);
    }
}

/// The cross-DC topology (gateways, a 200 µs long-haul cable) shards too,
/// and the asymmetric link latencies leave the lookahead at the fabric's
/// 1 µs minimum.
#[test]
fn cross_dc_topology_is_bit_identical_across_shard_counts() {
    let dc = cross_dc(CrossDcParams::paper_default());
    let plan = ShardPlan::partition(&dc.topology, 4).expect("partitionable");
    assert_eq!(plan.lookahead(), Some(us(1)));
    let hosts: Vec<NodeId> = dc
        .dc0_hosts
        .iter()
        .chain(dc.dc1_hosts.iter())
        .copied()
        .collect();
    let trace = synthesize(
        &hosts,
        &TraceParams::background_only(Workload::Google, 0.2, WINDOW, 41),
    );
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    compare_all_shard_counts("cross-dc/BFC", &dc.topology, &trace, &config);
}

/// Sharded runs end when the fabric drains, exactly like serial ones.
#[test]
fn sharded_end_time_matches_serial_drain() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthetic_trace(&topo, 3);
    let config = ExperimentConfig::new(Scheme::bfc(), WINDOW);
    let serial = run_experiment(&topo, &trace, &config);
    let sharded = run_experiment_sharded(&topo, &trace, &config, 3);
    assert!(serial.end_time > SimTime::ZERO);
    assert_eq!(serial.end_time, sharded.end_time);
    assert_eq!(serial.completed_flows, serial.total_flows);
}
