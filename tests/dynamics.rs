//! Tier-1 tests for the network-dynamics subsystem:
//!
//! 1. The failure-sweep acceptance scenario: every scheme in the paper lineup
//!    runs through the three canonical scenario shapes (single link down/up,
//!    degraded core link, flapping link) with **bit-identical** results at
//!    1, 2 and 4 worker threads, and the recovery metrics (blackholed
//!    packets, reroute count, time-to-recover) behave as specified.
//! 2. Property tests that routing recompute after *any* sequence of link
//!    down/up events is deterministic, loop-free, and never blackholes
//!    traffic between hosts that are still connected.

use backpressure_flow_control::experiments::scenario::ScenarioSpec;
use backpressure_flow_control::experiments::{
    run_experiment, ExperimentConfig, ParallelRunner, Scheme,
};
use backpressure_flow_control::net::dynamics::{FaultEvent, FaultSchedule, LinkAction, LinkStateMap};
use backpressure_flow_control::net::routing::RoutingTables;
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams, Topology};
use backpressure_flow_control::net::types::NodeId;
use backpressure_flow_control::sim::{SimDuration, SimTime};
use backpressure_flow_control::workloads::{synthesize, TraceParams, Workload};
use bfc_testkit::{int_range, pair, property, vec_of};

const WINDOW: SimDuration = SimDuration::from_micros(200);

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

fn trace(topo: &Topology, seed: u64) -> Vec<backpressure_flow_control::workloads::TraceFlow> {
    synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.6, WINDOW, seed),
    )
}

/// The three canonical shapes over the tiny topology, all faults comfortably
/// inside the measurement window so recovery is observable.
fn shapes() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "single down/up",
            ScenarioSpec::single_link_down_up("tor0", "spine0", us(50), us(120)),
        ),
        (
            "degraded core",
            ScenarioSpec::degraded_link("tor0", "spine1", us(50), 10.0, us(150), 100.0),
        ),
        (
            "flapping",
            ScenarioSpec::flapping_link("tor1", "spine0", us(40), us(20), us(140)),
        ),
    ]
}

/// Acceptance: all schemes × all three shapes, bit-identical at 1/2/4
/// threads, and every flow still completes (Go-Back-N recovers blackholed
/// packets end to end once the fabric heals).
#[test]
fn all_schemes_ride_out_all_shapes_bit_identically_at_1_2_4_threads() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = trace(&topo, 17);
    let mut configs = Vec::new();
    for (_, spec) in shapes() {
        let schedule = spec.resolve(&topo).expect("labels exist in tiny");
        for scheme in Scheme::paper_lineup() {
            let mut config =
                ExperimentConfig::new(scheme, WINDOW).with_dynamics(schedule.clone());
            config.drain = WINDOW * 16;
            configs.push(config);
        }
    }

    // Ground truth: plain serial calls to the pure per-run unit.
    let serial: Vec<_> = configs
        .iter()
        .map(|config| run_experiment(&topo, &trace, config))
        .collect();
    for result in &serial {
        assert_eq!(
            result.completed_flows, result.total_flows,
            "{}: every flow must complete despite the faults ({}/{})",
            result.scheme, result.completed_flows, result.total_flows
        );
        assert!(result.recovery.faults >= 2, "{}: faults applied", result.scheme);
    }

    for threads in [1, 2, 4] {
        let parallel = ParallelRunner::new(threads).run_experiments(&topo, &trace, &configs);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.scheme, b.scheme, "{threads} threads: scheme order");
            assert_eq!(a.fct, b.fct, "{threads} threads: FCT for {}", a.scheme);
            assert_eq!(a.records, b.records, "{threads} threads: raw records");
            assert_eq!(a.end_time, b.end_time);
            assert_eq!(a.drops, b.drops);
            assert_eq!(
                a.recovery, b.recovery,
                "{threads} threads: recovery metrics must be bit-identical for {}",
                a.scheme
            );
        }
    }
}

/// The recovery metrics carry the advertised meaning on the single
/// down/up shape: packets are blackholed, routing re-converges exactly once
/// per fault event, and goodput recovers after the repair.
#[test]
fn recovery_metrics_reflect_single_link_failure() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = trace(&topo, 17);
    let schedule = ScenarioSpec::single_link_down_up("tor0", "spine0", us(50), us(120))
        .resolve(&topo)
        .expect("labels exist");
    let mut config = ExperimentConfig::new(Scheme::bfc(), WINDOW).with_dynamics(schedule);
    config.drain = WINDOW * 16;
    let result = run_experiment(&topo, &trace, &config);

    assert_eq!(result.completed_flows, result.total_flows);
    assert!(
        result.recovery.blackholed_packets > 0,
        "a loaded link dying mid-run must blackhole packets"
    );
    assert_eq!(result.recovery.reroutes, 2, "one reroute per fault event");
    assert_eq!(result.recovery.faults, 2);
    let ttr = result
        .recovery
        .time_to_recover
        .expect("goodput must recover after the repair");
    assert!(
        ttr <= WINDOW,
        "recovery should happen within the window, took {ttr}"
    );
    // A run without dynamics reports empty recovery metrics.
    let baseline = run_experiment(&topo, &trace, &ExperimentConfig::new(Scheme::bfc(), WINDOW));
    assert_eq!(baseline.recovery.blackholed_packets, 0);
    assert_eq!(baseline.recovery.reroutes, 0);
    assert_eq!(baseline.recovery.time_to_recover, None);
}

/// A degraded (but alive) link never blackholes anything, and a flapped link
/// blackholes on every down edge.
#[test]
fn degradation_is_lossless_and_flapping_is_not() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = trace(&topo, 23);
    let degrade = ScenarioSpec::degraded_link("tor0", "spine1", us(50), 10.0, us(150), 100.0)
        .resolve(&topo)
        .expect("labels exist");
    let flap = ScenarioSpec::flapping_link("tor1", "spine0", us(40), us(20), us(140))
        .resolve(&topo)
        .expect("labels exist");
    let mut degrade_config = ExperimentConfig::new(Scheme::bfc(), WINDOW).with_dynamics(degrade);
    degrade_config.drain = WINDOW * 16;
    let mut flap_config = ExperimentConfig::new(Scheme::bfc(), WINDOW).with_dynamics(flap.clone());
    flap_config.drain = WINDOW * 16;

    let degraded = run_experiment(&topo, &trace, &degrade_config);
    assert_eq!(degraded.recovery.blackholed_packets, 0, "degradation only slows");
    assert_eq!(degraded.completed_flows, degraded.total_flows);

    let flapped = run_experiment(&topo, &trace, &flap_config);
    assert!(flapped.recovery.blackholed_packets > 0);
    assert_eq!(flapped.recovery.reroutes as usize, flap.len());
    assert_eq!(flapped.completed_flows, flapped.total_flows);
}

/// The tiny fat tree's ToR↔spine cables, as (tor, spine, tor_port,
/// spine_port) tuples — the link population the property tests toggle.
fn fabric_links(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut links = Vec::new();
    for &sw in &topo.switches() {
        for spec in topo.ports(sw) {
            if !topo.is_host(spec.peer) && sw < spec.peer {
                links.push((sw, spec.peer));
            }
        }
    }
    links
}

/// Test-side connectivity oracle: BFS over the undirected up-graph.
fn connected(topo: &Topology, state: &LinkStateMap, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; topo.num_nodes()];
    let mut queue = std::collections::VecDeque::from([from]);
    seen[from.index()] = true;
    while let Some(u) = queue.pop_front() {
        if u == to {
            return true;
        }
        for (port, spec) in topo.ports(u).iter().enumerate() {
            if state.is_up(u, port as u32) && !seen[spec.peer.index()] {
                seen[spec.peer.index()] = true;
                queue.push_back(spec.peer);
            }
        }
    }
    false
}

property! {
    /// After ANY sequence of fabric-link down/up events, recomputed routing
    /// is (a) deterministic — two recomputes agree on every egress choice —
    /// (b) loop-free — every still-connected host pair is reached within the
    /// node-count bound — and (c) never blackholes a still-connected pair —
    /// `try_egress_port` yields a port at every hop.
    fn routing_recompute_is_deterministic_loop_free_and_blackhole_free(
        toggles in vec_of(pair(int_range(0u64..8), int_range(0u64..2)), 1..24),
        flow_hash in int_range(0u64..1_000_000),
    ) {
        let topo = fat_tree(FatTreeParams::tiny());
        let links = fabric_links(&topo);
        let mut state = LinkStateMap::new(&topo);
        for &(which, dir) in &toggles {
            let (a, b) = links[(which as usize) % links.len()];
            let action = if dir == 0 {
                LinkAction::Down { a, b }
            } else {
                LinkAction::Up { a, b }
            };
            state.apply(&topo, &action).expect("fabric links are adjacent");
        }
        let routes = RoutingTables::compute_filtered(&topo, |n, p| state.is_up(n, p));
        let routes_again = RoutingTables::compute_filtered(&topo, |n, p| state.is_up(n, p));

        let hosts = topo.hosts();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                let reachable = connected(&topo, &state, src, dst);
                let first_hop = routes.try_egress_port(src, dst, flow_hash);
                assert_eq!(
                    first_hop.is_some(),
                    reachable,
                    "routing and the BFS oracle disagree for {src}->{dst}"
                );
                assert_eq!(
                    first_hop,
                    routes_again.try_egress_port(src, dst, flow_hash),
                    "recompute must be deterministic"
                );
                if !reachable {
                    continue;
                }
                // Walk the path hop by hop: no blackholes, no loops.
                let mut node = src;
                let mut hops = 0;
                while node != dst {
                    let port = routes
                        .try_egress_port(node, dst, flow_hash)
                        .unwrap_or_else(|| panic!(
                            "{node} blackholes traffic to {dst} although they are connected"
                        ));
                    assert!(
                        state.is_up(node, port),
                        "route from {node} to {dst} uses a dead link"
                    );
                    node = topo.ports(node)[port as usize].peer;
                    hops += 1;
                    assert!(
                        hops <= topo.num_nodes(),
                        "routing loop between {src} and {dst}"
                    );
                }
            }
        }
    }
}

/// Mid-run fault schedules compose with everything else the driver does —
/// a schedule built directly from `FaultEvent`s (no scenario layer) behaves
/// identically to the same schedule via `ScenarioSpec`.
#[test]
fn raw_fault_schedule_equals_resolved_scenario() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = trace(&topo, 31);
    let tor0 = topo.switches()[0];
    let spine0 = topo.switches()[2];
    let raw = FaultSchedule::new(vec![
        FaultEvent {
            at: SimTime::from_micros(50),
            action: LinkAction::Down { a: tor0, b: spine0 },
        },
        FaultEvent {
            at: SimTime::from_micros(120),
            action: LinkAction::Up { a: tor0, b: spine0 },
        },
    ]);
    let resolved = ScenarioSpec::single_link_down_up("tor0", "spine0", us(50), us(120))
        .resolve(&topo)
        .expect("labels exist");
    assert_eq!(raw, resolved);
    let a = run_experiment(
        &topo,
        &trace,
        &ExperimentConfig::new(Scheme::bfc(), WINDOW).with_dynamics(raw),
    );
    let b = run_experiment(
        &topo,
        &trace,
        &ExperimentConfig::new(Scheme::bfc(), WINDOW).with_dynamics(resolved),
    );
    assert_eq!(a.fct, b.fct);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.end_time, b.end_time);
}
