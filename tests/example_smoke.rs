//! Smoke coverage for the runnable examples, in the style of
//! `tests/fig_smoke.rs`: each test mirrors one example's pipeline (same
//! topology shape, same schemes, same driver) at reduced scale, so the flows
//! the examples exercise — all of which now route through `ParallelRunner` —
//! cannot silently rot. (`cargo test` also compiles the example binaries
//! themselves, so API drift fails the build outright.)

use backpressure_flow_control::experiments::{
    ExperimentConfig, ParallelRunner, ReplayTrace, Scheme,
};
use backpressure_flow_control::metrics::fct::{FctSummary, SizeBucket};
use backpressure_flow_control::net::topology::{cross_dc, fat_tree, CrossDcParams, FatTreeParams};
use backpressure_flow_control::net::Link;
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{
    concurrent_long_flows, cross_dc_trace, export_csv, synthesize, ArrivalShape, IncastSchedule,
    TraceFlow, TraceParams, Workload,
};

/// `examples/quickstart.rs`: one BFC run over a small incast-flavoured trace,
/// executed through the parallel driver.
#[test]
fn quickstart_pipeline_smoke() {
    let topo = fat_tree(FatTreeParams::tiny());
    let duration = SimDuration::from_micros(150);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams {
            workload: Workload::Google,
            load: 0.50,
            incast_load: 0.05,
            incast_fan_in: 6,
            incast_total_bytes: 300_000,
            duration,
            host_gbps: 100.0,
            seed: 42,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        },
    );
    let configs = [ExperimentConfig::new(Scheme::bfc(), duration)];
    let results = ParallelRunner::from_env().run_experiments(&topo, &trace, &configs);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].completed_flows, results[0].total_flows);
    assert!(results[0].utilization > 0.0);
    assert!(results[0].fct.overall.is_some(), "quickstart prints this table");
}

/// `examples/scheme_comparison.rs`: the paper lineup fanned over one trace.
#[test]
fn scheme_comparison_pipeline_smoke() {
    let topo = fat_tree(FatTreeParams::tiny());
    let duration = SimDuration::from_micros(150);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.5, duration, 7),
    );
    let configs: Vec<ExperimentConfig> = Scheme::paper_lineup()
        .into_iter()
        .map(|scheme| ExperimentConfig::new(scheme, duration))
        .collect();
    let results = ParallelRunner::from_env().run_experiments(&topo, &trace, &configs);
    assert_eq!(results.len(), Scheme::paper_lineup().len());
    for (config, r) in configs.iter().zip(&results) {
        assert_eq!(r.scheme, config.scheme.name(), "results stay in scheme order");
        assert_eq!(r.completed_flows, r.total_flows, "{}", r.scheme);
    }
}

/// `examples/incast_collapse.rs`: a (scheme, fan-in) grid of independent
/// jobs through `ParallelRunner::run_all`.
#[test]
fn incast_collapse_pipeline_smoke() {
    let topo = fat_tree(FatTreeParams::tiny());
    let hosts = topo.hosts();
    let receiver = hosts[0];
    let duration = SimDuration::from_micros(200);
    let jobs: Vec<(Scheme, usize)> = [Scheme::bfc(), Scheme::Dcqcn { window: true, sfq: false }]
        .into_iter()
        .flat_map(|scheme| [2usize, 4].into_iter().map(move |f| (scheme.clone(), f)))
        .collect();
    let results = ParallelRunner::from_env().run_all(&jobs, |(scheme, fan_in)| {
        let trace = concurrent_long_flows(&hosts, receiver, *fan_in, 200_000);
        let mut config = ExperimentConfig::new(scheme.clone(), duration);
        config.drain = duration * 8;
        backpressure_flow_control::experiments::run_experiment(&topo, &trace, &config)
    });
    assert_eq!(results.len(), jobs.len());
    for ((scheme, _), r) in jobs.iter().zip(&results) {
        assert_eq!(r.scheme, scheme.name());
        assert_eq!(r.completed_flows, r.total_flows, "{}", r.scheme);
    }
}

/// `examples/cross_datacenter.rs`: two DCs over a long-haul link, both
/// schemes through the parallel driver, intra/inter split summarized.
#[test]
fn cross_datacenter_pipeline_smoke() {
    let params = CrossDcParams {
        dc: FatTreeParams {
            num_tors: 2,
            hosts_per_tor: 4,
            num_spines: 2,
            host_link: Link::new(10.0, SimDuration::from_micros(1)),
            fabric_link: Link::new(10.0, SimDuration::from_micros(1)),
        },
        inter_dc_link: Link::new(100.0, SimDuration::from_micros(20)),
    };
    let built = cross_dc(params);
    let duration = SimDuration::from_micros(600);
    let trace = cross_dc_trace(
        &built.dc0_hosts,
        &built.dc1_hosts,
        &TraceParams {
            workload: Workload::FbHadoop,
            load: 0.5,
            incast_load: 0.0,
            incast_fan_in: 0,
            incast_total_bytes: 0,
            duration,
            host_gbps: 10.0,
            seed: 11,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        },
        0.2,
    );
    let dc0: std::collections::HashSet<_> = built.dc0_hosts.iter().copied().collect();
    let configs: Vec<ExperimentConfig> = [Scheme::bfc(), Scheme::Dcqcn { window: true, sfq: false }]
        .into_iter()
        .map(|scheme| ExperimentConfig::new(scheme, duration))
        .collect();
    for r in ParallelRunner::from_env().run_experiments(&built.topology, &trace, &configs) {
        for inter in [false, true] {
            let records: Vec<_> = r
                .records
                .iter()
                .filter(|rec| {
                    let f: &TraceFlow = &trace[rec.flow.index()];
                    (dc0.contains(&f.src) != dc0.contains(&f.dst)) == inter
                })
                .copied()
                .collect();
            let summary = FctSummary::from_records_with_buckets(
                &records,
                &[SizeBucket { lo: 0, hi: u64::MAX }],
            );
            assert!(
                summary.overall.is_some(),
                "{}: {} traffic class must be populated",
                r.scheme,
                if inter { "inter-DC" } else { "intra-DC" }
            );
        }
    }
}

/// `examples/trace_replay.rs`: export → import → replay is bit-identical.
#[test]
fn trace_replay_pipeline_smoke() {
    let topo = fat_tree(FatTreeParams::tiny());
    let duration = SimDuration::from_micros(150);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams::background_only(Workload::Google, 0.4, duration, 9)
            .with_arrivals(ArrivalShape::bursty_default()),
    );
    let replay = ReplayTrace::from_csv_str(&export_csv(&trace)).expect("round trip");
    assert_eq!(replay.flows(), &trace[..]);
    let runner = ParallelRunner::from_env();
    let config = replay.config(Scheme::bfc());
    let original = runner.run_experiments(&topo, &trace, std::slice::from_ref(&config));
    let replayed = replay
        .run_all(&topo, std::slice::from_ref(&config), &runner)
        .expect("trace fits the topology");
    assert_eq!(original[0].fct, replayed[0].fct);
    assert_eq!(original[0].records, replayed[0].records);
}
