//! The trace-replay acceptance test: a trace exported with `export_csv` and
//! re-imported with `import_csv` replays through `run_experiment` with
//! **bit-identical** FCT statistics to the original in-memory trace — on the
//! paper's default workload and on the new bursty / clustered-incast
//! variants, serially and through the `ParallelRunner`.

use backpressure_flow_control::experiments::{
    run_experiment, ExperimentConfig, ParallelRunner, ReplayError, ReplayTrace, Scheme,
};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::{SimDuration, SimTime};
use backpressure_flow_control::workloads::io::{export_csv, write_csv_file};
use backpressure_flow_control::workloads::{
    synthesize, ArrivalShape, IncastSchedule, TraceFlow, TraceParams, Workload,
};
use bfc_net::types::NodeId;

fn incast_trace_params(seed: u64) -> TraceParams {
    TraceParams {
        workload: Workload::Google,
        load: 0.50,
        incast_load: 0.05,
        incast_fan_in: 6,
        incast_total_bytes: 400_000,
        duration: SimDuration::from_micros(200),
        host_gbps: 100.0,
        seed,
        arrivals: ArrivalShape::paper_default(),
        incast_schedule: IncastSchedule::paper_default(),
    }
}

#[test]
fn exported_and_reimported_trace_replays_bit_identically() {
    let topo = fat_tree(FatTreeParams::tiny());
    for params in [
        incast_trace_params(31),
        incast_trace_params(31)
            .with_arrivals(ArrivalShape::bursty_default())
            .with_incast_schedule(IncastSchedule::LogNormalGaps { sigma: 1.0 }),
    ] {
        let trace = synthesize(&topo.hosts(), &params);
        assert!(!trace.is_empty());

        // Through a real file, exactly the path `trace-tool replay` takes.
        let path = std::env::temp_dir().join(format!(
            "bfc_replay_test_{}_{:?}.csv",
            params.seed, params.arrivals
        ));
        write_csv_file(&path, &trace).expect("write trace CSV");
        let replay = ReplayTrace::from_csv_path(&path).expect("re-import trace CSV");
        let _ = std::fs::remove_file(&path);
        assert_eq!(replay.flows(), &trace[..], "flow list must round-trip exactly");

        for scheme in [Scheme::bfc(), Scheme::Dcqcn { window: true, sfq: false }] {
            let config = ExperimentConfig::new(scheme, params.duration);
            let original = run_experiment(&topo, &trace, &config);
            let replayed = replay.run(&topo, &config).expect("trace fits topology");
            assert_eq!(original.fct, replayed.fct, "{}: FCT summary", original.scheme);
            assert_eq!(original.records, replayed.records, "{}: raw records", original.scheme);
            assert_eq!(original.completed_flows, replayed.completed_flows);
            assert_eq!(original.total_flows, replayed.total_flows);
            assert_eq!(original.end_time, replayed.end_time);
            assert_eq!(original.drops, replayed.drops);
            assert_eq!(
                original.utilization.to_bits(),
                replayed.utilization.to_bits(),
                "{}: utilization",
                original.scheme
            );
            assert_eq!(original.policy_stats, replayed.policy_stats);
        }
    }
}

#[test]
fn replay_through_parallel_runner_matches_serial_original() {
    let topo = fat_tree(FatTreeParams::tiny());
    let trace = synthesize(&topo.hosts(), &incast_trace_params(17));
    let replay = ReplayTrace::from_csv_str(&export_csv(&trace)).expect("round trip");
    let configs: Vec<ExperimentConfig> = [Scheme::bfc(), Scheme::IdealFq]
        .into_iter()
        .map(|s| ExperimentConfig::new(s, SimDuration::from_micros(200)))
        .collect();
    let serial: Vec<_> = configs
        .iter()
        .map(|c| run_experiment(&topo, &trace, c))
        .collect();
    for threads in [1, 2, 4] {
        let parallel = replay
            .run_all(&topo, &configs, &ParallelRunner::new(threads))
            .expect("valid trace");
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.scheme, b.scheme, "{threads} threads");
            assert_eq!(a.fct, b.fct, "{threads} threads: {}", a.scheme);
            assert_eq!(a.records, b.records, "{threads} threads: {}", a.scheme);
            assert_eq!(a.end_time, b.end_time);
        }
    }
}

#[test]
fn replay_validation_rejects_bad_traces() {
    let topo = fat_tree(FatTreeParams::tiny());
    // Unknown endpoint: NodeId(500) is not a host of the tiny fabric.
    let replay = ReplayTrace::from_flows(vec![TraceFlow {
        src: topo.hosts()[0],
        dst: NodeId(500),
        size_bytes: 1_000,
        start: SimTime::ZERO,
        is_incast: false,
    }])
    .expect("non-empty");
    let config = ExperimentConfig::new(Scheme::bfc(), SimDuration::from_micros(10));
    assert!(matches!(
        replay.run(&topo, &config),
        Err(ReplayError::UnknownHost { flow_index: 0, node: NodeId(500) })
    ));
    // Parse errors surface with their line numbers, empty traces are refused.
    let err = ReplayTrace::from_csv_str("src,dst,size_bytes,start_ns,is_incast\n1,1,5,0,0\n")
        .expect_err("self flow");
    assert!(err.to_string().contains("line 2"), "{err}");
    assert!(matches!(
        ReplayTrace::from_csv_str("src,dst,size_bytes,start_ns,is_incast\n"),
        Err(ReplayError::EmptyTrace)
    ));
}
