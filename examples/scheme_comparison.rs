//! Head-to-head comparison of every scheme the paper evaluates (BFC,
//! Ideal-FQ, DCQCN, DCQCN+Win, HPCC, DCQCN+Win+SFQ) on one workload — a
//! miniature of Fig. 5.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{synthesize, TraceParams, Workload};

fn main() {
    let topo = fat_tree(FatTreeParams::tiny());
    let duration = SimDuration::from_micros(400);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams {
            workload: Workload::Google,
            load: 0.60,
            incast_load: 0.05,
            incast_fan_in: 6,
            incast_total_bytes: 500_000,
            duration,
            host_gbps: 100.0,
            seed: 7,
        },
    );
    println!(
        "{} flows, Google distribution, 60% load + 5% incast\n",
        trace.len()
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "scheme", "p99 all", "p99 <3KB", "p99 >100KB", "util %", "drops"
    );
    for scheme in Scheme::paper_lineup() {
        let config = ExperimentConfig::new(scheme, duration);
        let r = run_experiment(&topo, &trace, &config);
        let p99_all = r.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
        let p99_small = r
            .fct
            .buckets
            .iter()
            .filter(|b| b.bucket.hi <= 3_000)
            .map(|b| b.p99)
            .fold(f64::NAN, f64::max);
        let p99_large = r
            .fct
            .buckets
            .iter()
            .filter(|b| b.bucket.lo >= 100_000)
            .map(|b| b.p99)
            .fold(f64::NAN, f64::max);
        println!(
            "{:<16} {:>10.2} {:>12.2} {:>12.2} {:>10.1} {:>8}",
            r.scheme,
            p99_all,
            p99_small,
            p99_large,
            r.utilization * 100.0,
            r.drops
        );
    }
    println!("\n(99th-percentile FCT slowdowns; lower is better — BFC should track Ideal-FQ)");
}
