//! Head-to-head comparison of every scheme the paper evaluates (BFC,
//! Ideal-FQ, DCQCN, DCQCN+Win, HPCC, DCQCN+Win+SFQ) on one workload — a
//! miniature of Fig. 5, run through the parallel experiment driver so it
//! doubles as a smoke test for `ParallelRunner`.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! BFC_THREADS=1 cargo run --release --example scheme_comparison   # serial
//! ```
//!
//! The output is bit-identical at any `BFC_THREADS` setting; only the
//! wall-clock time changes.

use backpressure_flow_control::experiments::{ExperimentConfig, ParallelRunner, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{
    synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload,
};

fn main() {
    let topo = fat_tree(FatTreeParams::tiny());
    let duration = SimDuration::from_micros(400);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams {
            workload: Workload::Google,
            load: 0.60,
            incast_load: 0.05,
            incast_fan_in: 6,
            incast_total_bytes: 500_000,
            duration,
            host_gbps: 100.0,
            seed: 7,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        },
    );
    let runner = ParallelRunner::from_env();
    println!(
        "{} flows, Google distribution, 60% load + 5% incast ({} worker thread{})\n",
        trace.len(),
        runner.threads(),
        if runner.threads() == 1 { "" } else { "s" },
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "scheme", "p99 all", "p99 <3KB", "p99 >100KB", "util %", "drops"
    );

    // One config per scheme; the runner fans them out and returns results
    // in scheme order no matter which worker finishes first.
    let configs: Vec<ExperimentConfig> = Scheme::paper_lineup()
        .into_iter()
        .map(|scheme| ExperimentConfig::new(scheme, duration))
        .collect();
    for r in runner.run_experiments(&topo, &trace, &configs) {
        let p99_all = r.fct.overall.as_ref().map(|o| o.p99).unwrap_or(f64::NAN);
        let p99_small = r
            .fct
            .buckets
            .iter()
            .filter(|b| b.bucket.hi <= 3_000)
            .map(|b| b.p99)
            .fold(f64::NAN, f64::max);
        let p99_large = r
            .fct
            .buckets
            .iter()
            .filter(|b| b.bucket.lo >= 100_000)
            .map(|b| b.p99)
            .fold(f64::NAN, f64::max);
        println!(
            "{:<16} {:>10.2} {:>12.2} {:>12.2} {:>10.1} {:>8}",
            r.scheme,
            p99_all,
            p99_small,
            p99_large,
            r.utilization * 100.0,
            r.drops
        );
    }
    println!("\n(99th-percentile FCT slowdowns; lower is better — BFC should track Ideal-FQ)");
}
