//! Incast: many senders converge on one receiver. This is the scenario where
//! end-to-end congestion control struggles (Fig. 8): per-flow buffers pile up
//! at the last-hop switch, PFC fires, and utilization collapses. BFC holds
//! the backlog upstream with per-flow pauses instead.
//!
//! ```sh
//! cargo run --release --example incast_collapse
//! ```

use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::concurrent_long_flows;

fn main() {
    let topo = fat_tree(FatTreeParams::tiny());
    let hosts = topo.hosts();
    let receiver = hosts[0];
    let duration = SimDuration::from_micros(400);

    println!("incast of N senders x 400 KB each into {receiver}\n");
    println!(
        "{:<16} {:>7} {:>12} {:>16} {:>10} {:>8}",
        "scheme", "fan-in", "util %", "p99 buffer (KB)", "pauses", "drops"
    );
    for scheme in [
        Scheme::bfc(),
        Scheme::Dcqcn {
            window: true,
            sfq: false,
        },
    ] {
        for fan_in in [2usize, 4, 7] {
            let trace = concurrent_long_flows(&hosts, receiver, fan_in, 400_000);
            let mut config = ExperimentConfig::new(scheme.clone(), duration);
            config.drain = duration * 8;
            let r = run_experiment(&topo, &trace, &config);
            println!(
                "{:<16} {:>7} {:>12.1} {:>16.1} {:>10} {:>8}",
                r.scheme,
                fan_in,
                r.utilization * 100.0,
                r.occupancy.percentile_bytes(99.0) / 1e3,
                r.policy_stats.pauses,
                r.drops
            );
        }
    }
    println!("\nBFC keeps tail buffer occupancy bounded by pausing flows hop by hop;");
    println!("DCQCN+Win lets the incast pile up at the receiver's ToR.");
}
