//! Incast: many senders converge on one receiver. This is the scenario where
//! end-to-end congestion control struggles (Fig. 8): per-flow buffers pile up
//! at the last-hop switch, PFC fires, and utilization collapses. BFC holds
//! the backlog upstream with per-flow pauses instead.
//!
//! The (scheme, fan-in) grid is fanned out through `ParallelRunner` — each
//! cell builds its own trace and runs independently, so the example doubles
//! as a smoke test for the parallel driver. Output order (and every number)
//! is identical at any `BFC_THREADS` setting.
//!
//! ```sh
//! cargo run --release --example incast_collapse
//! BFC_THREADS=4 cargo run --release --example incast_collapse
//! ```

use backpressure_flow_control::experiments::{
    run_experiment, ExperimentConfig, ParallelRunner, Scheme,
};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::concurrent_long_flows;

fn main() {
    let topo = fat_tree(FatTreeParams::tiny());
    let hosts = topo.hosts();
    let receiver = hosts[0];
    let duration = SimDuration::from_micros(400);

    let runner = ParallelRunner::from_env();
    println!(
        "incast of N senders x 400 KB each into {receiver} ({} worker thread{})\n",
        runner.threads(),
        if runner.threads() == 1 { "" } else { "s" },
    );
    println!(
        "{:<16} {:>7} {:>12} {:>16} {:>10} {:>8}",
        "scheme", "fan-in", "util %", "p99 buffer (KB)", "pauses", "drops"
    );

    // Every (scheme, fan-in) cell is one independent job.
    let jobs: Vec<(Scheme, usize)> = [
        Scheme::bfc(),
        Scheme::Dcqcn {
            window: true,
            sfq: false,
        },
    ]
    .into_iter()
    .flat_map(|scheme| [2usize, 4, 7].into_iter().map(move |f| (scheme.clone(), f)))
    .collect();
    let results = runner.run_all(&jobs, |(scheme, fan_in)| {
        let trace = concurrent_long_flows(&hosts, receiver, *fan_in, 400_000);
        let mut config = ExperimentConfig::new(scheme.clone(), duration);
        config.drain = duration * 8;
        run_experiment(&topo, &trace, &config)
    });

    for ((_, fan_in), r) in jobs.iter().zip(&results) {
        println!(
            "{:<16} {:>7} {:>12.1} {:>16.1} {:>10} {:>8}",
            r.scheme,
            fan_in,
            r.utilization * 100.0,
            r.occupancy.percentile_bytes(99.0) / 1e3,
            r.policy_stats.pauses,
            r.drops
        );
    }
    println!("\nBFC keeps tail buffer occupancy bounded by pausing flows hop by hop;");
    println!("DCQCN+Win lets the incast pile up at the receiver's ToR.");
}
