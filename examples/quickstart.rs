//! Quickstart: build a small leaf-spine fabric, synthesize a Google-like
//! workload, run it under BFC and print the tail-latency summary.
//!
//! Like every other example, the run goes through the parallel experiment
//! driver (`ParallelRunner::from_env`, thread count from `BFC_THREADS`);
//! with a single config it degenerates to a serial run, and the output is
//! identical at any thread count.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use backpressure_flow_control::experiments::{ExperimentConfig, ParallelRunner, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{
    synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload,
};

fn main() {
    // A 2-rack, 8-host leaf-spine fabric with 100 Gbps links (use
    // `FatTreeParams::t1()` / `t2()` for the paper's full topologies).
    let topo = fat_tree(FatTreeParams::tiny());

    // 500 us of Google-distributed traffic at 50% load plus a 5% incast
    // component, exactly how the paper constructs its workloads.
    let duration = SimDuration::from_micros(500);
    let trace = synthesize(
        &topo.hosts(),
        &TraceParams {
            workload: Workload::Google,
            load: 0.50,
            incast_load: 0.05,
            incast_fan_in: 6,
            incast_total_bytes: 500_000,
            duration,
            host_gbps: 100.0,
            seed: 42,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        },
    );
    println!("synthesized {} flows over {duration}", trace.len());

    // Run the trace under BFC with the paper's switch parameters
    // (32 queues/port, 12 MB shared buffer, 1 KB MTU).
    let configs = [ExperimentConfig::new(Scheme::bfc(), duration)];
    let results = ParallelRunner::from_env().run_experiments(&topo, &trace, &configs);
    let result = &results[0];

    println!(
        "completed {}/{} flows, utilization {:.1}%, PFC pause time {:.3}%, drops {}",
        result.completed_flows,
        result.total_flows,
        result.utilization * 100.0,
        result.pfc_pause_fraction * 100.0,
        result.drops,
    );
    println!(
        "per-flow pauses sent: {}, resumes: {}, queue collisions: {:.2}%",
        result.policy_stats.pauses,
        result.policy_stats.resumes,
        result.policy_stats.collision_fraction() * 100.0
    );
    println!();
    println!("{}", result.fct.table("FCT slowdown under BFC"));
}
