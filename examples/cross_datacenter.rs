//! Cross-data-center traffic (a miniature of Fig. 9): two fat-tree data
//! centers joined by a long-haul gateway link. BFC reacts at the one-hop RTT
//! inside each data center, so intra-DC tail latency is insulated from the
//! long-RTT inter-DC flows; end-to-end control (DCQCN+Win) is not.
//!
//! ```sh
//! cargo run --release --example cross_datacenter
//! ```

use backpressure_flow_control::experiments::{run_experiment, ExperimentConfig, Scheme};
use backpressure_flow_control::metrics::fct::{FctSummary, SizeBucket};
use backpressure_flow_control::net::topology::{cross_dc, CrossDcParams, FatTreeParams};
use backpressure_flow_control::net::Link;
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{cross_dc_trace, TraceParams, Workload};

fn main() {
    // Two small 10 Gbps data centers, 100 Gbps long-haul link with 20 us of
    // one-way delay (the paper uses 200 us; scaled down so the example runs
    // in a couple of seconds).
    let params = CrossDcParams {
        dc: FatTreeParams {
            num_tors: 2,
            hosts_per_tor: 4,
            num_spines: 2,
            host_link: Link::new(10.0, SimDuration::from_micros(1)),
            fabric_link: Link::new(10.0, SimDuration::from_micros(1)),
        },
        inter_dc_link: Link::new(100.0, SimDuration::from_micros(20)),
    };
    let built = cross_dc(params);
    let duration = SimDuration::from_micros(1_500);
    let trace = cross_dc_trace(
        &built.dc0_hosts,
        &built.dc1_hosts,
        &TraceParams {
            workload: Workload::FbHadoop,
            load: 0.5,
            incast_load: 0.0,
            incast_fan_in: 0,
            incast_total_bytes: 0,
            duration,
            host_gbps: 10.0,
            seed: 11,
        },
        0.2,
    );
    let dc0: std::collections::HashSet<_> = built.dc0_hosts.iter().copied().collect();
    println!("{} flows, 20% of them inter-DC\n", trace.len());
    println!(
        "{:<16} {:<9} {:>7} {:>8} {:>8}",
        "scheme", "class", "flows", "p50", "p99"
    );
    for scheme in [
        Scheme::bfc(),
        Scheme::Dcqcn {
            window: true,
            sfq: false,
        },
    ] {
        let config = ExperimentConfig::new(scheme, duration);
        let r = run_experiment(&built.topology, &trace, &config);
        for inter in [false, true] {
            let records: Vec<_> = r
                .records
                .iter()
                .filter(|rec| {
                    let f = &trace[rec.flow.index()];
                    (dc0.contains(&f.src) != dc0.contains(&f.dst)) == inter
                })
                .copied()
                .collect();
            let summary = FctSummary::from_records_with_buckets(
                &records,
                &[SizeBucket { lo: 0, hi: u64::MAX }],
            );
            if let Some(o) = summary.overall {
                println!(
                    "{:<16} {:<9} {:>7} {:>8.2} {:>8.2}",
                    r.scheme,
                    if inter { "inter-DC" } else { "intra-DC" },
                    o.count,
                    o.p50,
                    o.p99
                );
            }
        }
    }
    println!("\n(FCT slowdown; BFC keeps intra-DC tails low despite the long-haul traffic)");
}
