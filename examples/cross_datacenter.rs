//! Cross-data-center traffic (a miniature of Fig. 9): two fat-tree data
//! centers joined by a long-haul gateway link. BFC reacts at the one-hop RTT
//! inside each data center, so intra-DC tail latency is insulated from the
//! long-RTT inter-DC flows; end-to-end control (DCQCN+Win) is not.
//!
//! Both schemes fan out through the parallel experiment driver
//! (`BFC_THREADS` sets the worker count; output is identical at any value).
//!
//! ```sh
//! cargo run --release --example cross_datacenter
//! ```

use backpressure_flow_control::experiments::{ExperimentConfig, ParallelRunner, Scheme};
use backpressure_flow_control::metrics::fct::{FctSummary, SizeBucket};
use backpressure_flow_control::net::topology::{cross_dc, CrossDcParams, FatTreeParams};
use backpressure_flow_control::net::Link;
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::{
    cross_dc_trace, ArrivalShape, IncastSchedule, TraceParams, Workload,
};

fn main() {
    // Two small 10 Gbps data centers, 100 Gbps long-haul link with 20 us of
    // one-way delay (the paper uses 200 us; scaled down so the example runs
    // in a couple of seconds).
    let params = CrossDcParams {
        dc: FatTreeParams {
            num_tors: 2,
            hosts_per_tor: 4,
            num_spines: 2,
            host_link: Link::new(10.0, SimDuration::from_micros(1)),
            fabric_link: Link::new(10.0, SimDuration::from_micros(1)),
        },
        inter_dc_link: Link::new(100.0, SimDuration::from_micros(20)),
    };
    let built = cross_dc(params);
    let duration = SimDuration::from_micros(1_500);
    let trace = cross_dc_trace(
        &built.dc0_hosts,
        &built.dc1_hosts,
        &TraceParams {
            workload: Workload::FbHadoop,
            load: 0.5,
            incast_load: 0.0,
            incast_fan_in: 0,
            incast_total_bytes: 0,
            duration,
            host_gbps: 10.0,
            seed: 11,
            arrivals: ArrivalShape::paper_default(),
            incast_schedule: IncastSchedule::paper_default(),
        },
        0.2,
    );
    let dc0: std::collections::HashSet<_> = built.dc0_hosts.iter().copied().collect();
    let runner = ParallelRunner::from_env();
    println!(
        "{} flows, 20% of them inter-DC ({} worker thread{})\n",
        trace.len(),
        runner.threads(),
        if runner.threads() == 1 { "" } else { "s" },
    );
    println!(
        "{:<16} {:<9} {:>7} {:>8} {:>8}",
        "scheme", "class", "flows", "p50", "p99"
    );
    let configs: Vec<ExperimentConfig> = [
        Scheme::bfc(),
        Scheme::Dcqcn {
            window: true,
            sfq: false,
        },
    ]
    .into_iter()
    .map(|scheme| ExperimentConfig::new(scheme, duration))
    .collect();
    for r in runner.run_experiments(&built.topology, &trace, &configs) {
        for inter in [false, true] {
            let records: Vec<_> = r
                .records
                .iter()
                .filter(|rec| {
                    let f = &trace[rec.flow.index()];
                    (dc0.contains(&f.src) != dc0.contains(&f.dst)) == inter
                })
                .copied()
                .collect();
            let summary = FctSummary::from_records_with_buckets(
                &records,
                &[SizeBucket { lo: 0, hi: u64::MAX }],
            );
            if let Some(o) = summary.overall {
                println!(
                    "{:<16} {:<9} {:>7} {:>8.2} {:>8.2}",
                    r.scheme,
                    if inter { "inter-DC" } else { "intra-DC" },
                    o.count,
                    o.p50,
                    o.p99
                );
            }
        }
    }
    println!("\n(FCT slowdown; BFC keeps intra-DC tails low despite the long-haul traffic)");
}
