//! Trace replay: persist a synthesized workload as CSV, import it back, and
//! replay it through the experiment driver — demonstrating that a trace that
//! has been round-tripped through the on-disk format produces **bit-identical**
//! results to the in-memory trace it came from.
//!
//! The synthetic trace uses the two new arrival options on top of the paper's
//! setup: bursty (Markov-modulated on/off) background gaps and log-normal
//! incast inter-event gaps. The same CSV can be produced, inspected and
//! replayed from the command line with
//! `cargo run --release -p bfc-experiments --bin trace-tool`.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use backpressure_flow_control::experiments::{ParallelRunner, ReplayTrace, Scheme};
use backpressure_flow_control::net::topology::{fat_tree, FatTreeParams};
use backpressure_flow_control::sim::SimDuration;
use backpressure_flow_control::workloads::io::{export_csv, TraceStats};
use backpressure_flow_control::workloads::{
    synthesize, ArrivalShape, IncastSchedule, TraceParams, Workload,
};

fn main() {
    let topo = fat_tree(FatTreeParams::tiny());
    let duration = SimDuration::from_micros(400);
    let params = TraceParams {
        workload: Workload::Google,
        load: 0.50,
        incast_load: 0.05,
        incast_fan_in: 6,
        incast_total_bytes: 500_000,
        duration,
        host_gbps: 100.0,
        seed: 9,
        arrivals: ArrivalShape::bursty_default(),
        incast_schedule: IncastSchedule::LogNormalGaps { sigma: 1.0 },
    };
    let trace = synthesize(&topo.hosts(), &params);

    // Export to CSV and import it back: the flow list survives bit for bit.
    let csv = export_csv(&trace);
    let path = std::env::temp_dir().join("bfc_trace_replay_example.csv");
    std::fs::write(&path, &csv).expect("write trace CSV");
    let replay = ReplayTrace::from_csv_path(&path).expect("re-import trace CSV");
    assert_eq!(replay.flows(), &trace[..], "CSV round trip must be exact");

    println!(
        "exported {} flows ({} bytes of CSV) to {} and re-imported them\n",
        trace.len(),
        csv.len(),
        path.display()
    );
    println!("{}\n", TraceStats::from_flows(&trace, 100.0).expect("non-empty"));

    // Replay both the original and the imported trace under BFC; the runs
    // are the same pure function of (topology, trace, config), so every
    // statistic matches exactly.
    let runner = ParallelRunner::from_env();
    let config = replay.config(Scheme::bfc());
    let original = runner.run_experiments(&topo, &trace, std::slice::from_ref(&config));
    let replayed = replay
        .run_all(&topo, std::slice::from_ref(&config), &runner)
        .expect("trace fits the topology");
    assert_eq!(original[0].fct, replayed[0].fct, "FCT stats must be bit-identical");
    assert_eq!(original[0].records, replayed[0].records);
    assert_eq!(original[0].end_time, replayed[0].end_time);

    println!(
        "replayed under {}: {}/{} flows, utilization {:.1}%, end time {}",
        replayed[0].scheme,
        replayed[0].completed_flows,
        replayed[0].total_flows,
        replayed[0].utilization * 100.0,
        replayed[0].end_time,
    );
    println!("in-memory and replayed-from-CSV runs are bit-identical");
    let _ = std::fs::remove_file(&path);
}
